"""Streaming pipelined executor: crowd answers flow downstream per wave.

The barrier :class:`~repro.lang.executor.Executor` resolves each crowd
predicate through its own one-task scheduler run, so a statement's
simulated makespan is the *sum* of per-row makespans — the lanes of the
batch runtime sit idle — and an early-terminating consumer (TOP-K, LIMIT)
keeps paying for upstream answers it will never read.

:class:`StreamingExecutor` compiles supported plan shapes into a pipeline:

* the machine-decidable input (scan/filter chains, the join's hash side)
  is resolved vectorized up front via the columnar fast paths;
* every crowd question of the statement is planned deterministically on
  the caller's thread in row order, then handed to the
  :class:`~repro.platform.batch.BatchScheduler` as *one* run whose batches
  saturate all lanes;
* as each batch (a *wave*) lands, verdicts propagate downstream
  immediately — a crowd filter feeds the join's probe side while its
  remaining waves are still pending;
* early termination propagates *upstream*: once TOP-K/LIMIT has emitted
  enough rows, still-pending HITs are cancelled through the scheduler's
  cancel seam (the one hedging refunds ride through), never published,
  and the avoided spend is booked in ``ExecutionStats``, platform stats,
  metrics, and the profiler.

Determinism: planning order equals row order, which is exactly the order
the barrier path consumes the pool/platform RNG streams in, so with no
early termination the votes, verdicts, rows, and cache entries are
bit-identical to the barrier executor at the same seed — at any
``max_parallel``. TOP-K pre-sorts its candidates (stable sort commutes
with filtering), which reorders question planning; that path trades the
barrier-identical RNG stream for cancelled HITs, by design. Plan shapes
the compiler does not cover fall back to the inherited barrier
implementation unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.expressions import (
    CrowdPredicate,
    Expression,
    conjoin,
    contains_crowd_predicate,
    is_crowd_unknown,
)
from repro.data.schema import Schema
from repro.errors import ExecutionError
from repro.lang.executor import NO, YES, ExecutionStats, Executor, QueryResult
from repro.lang.planner import (
    CrowdFilterNode,
    CrowdJoinNode,
    CrowdOrderNode,
    DistinctNode,
    FillNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    OrderNode,
    PlanNode,
    ProjectNode,
)
from repro.platform.cache import signature_of
from repro.platform.task import Task, TaskType


class _Unsupported(Exception):
    """Internal signal: the plan shape has no streaming compilation."""


@dataclass
class _Pipeline:
    """One compiled streaming statement: a crowd filter stage plus sinks.

    Attributes:
        filter_node: The crowd filter whose verdicts drive the stream.
        prefix: Machine-decidable conjunction evaluated per row before any
            crowd question is planned (None when the predicate is bare).
        predicate: The single crowd conjunct the stream resolves.
        join: Machine join the filter's survivors probe into (or None).
        order: ORDER BY keys above the stream (or None).
        project: Projection columns above the stream (or None).
        distinct: Whether DISTINCT applies to emitted rows.
        limit: LIMIT above the stream (or None) — the early-termination
            trigger.
    """

    filter_node: CrowdFilterNode
    prefix: Expression | None
    predicate: CrowdPredicate
    join: JoinNode | None
    order: tuple[tuple[str, bool], ...] | None
    project: tuple[str, ...] | None
    distinct: bool
    limit: int | None


class StreamingExecutor(Executor):
    """Pipelined drop-in for :class:`Executor` (the ``pipeline=on`` path).

    Construction matches :class:`Executor`. Statements whose plan compiles
    to a supported pipeline stream their crowd waves; everything else runs
    through the inherited barrier implementation, so every statement the
    barrier executor accepts is accepted here too.
    """

    def execute(self, plan: LogicalPlan) -> QueryResult:
        """Run *plan*, streaming when compilable, barrier otherwise."""
        if self.platform.scheduler is None:
            return super().execute(plan)
        try:
            pipe = self._compile(plan.root)
        except _Unsupported:
            return super().execute(plan)
        stats = ExecutionStats()
        schema, rows = self._run_pipeline(pipe, stats)
        return QueryResult(
            columns=schema.column_names,
            rows=rows,
            stats=stats,
            plan_text=plan.explain(),
        )

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    def _compile(self, node: PlanNode) -> _Pipeline:
        """Peel sinks off *node* down to one streamable crowd filter stage.

        Raises :class:`_Unsupported` for any other shape; the caller falls
        back to barrier execution.
        """
        limit: int | None = None
        distinct = False
        project: tuple[str, ...] | None = None
        order: tuple[tuple[str, bool], ...] | None = None
        if isinstance(node, LimitNode):
            limit = node.limit
            node = node.child
        if isinstance(node, DistinctNode):
            distinct = True
            node = node.child
        if isinstance(node, ProjectNode):
            project = node.columns
            node = node.child
        if isinstance(node, OrderNode):
            order = node.keys
            node = node.child
        join: JoinNode | None = None
        if isinstance(node, JoinNode):
            # Crowd filter below a machine join: survivors stream into the
            # probe side while the hash side builds from machine columns.
            if contains_crowd_predicate(node.condition):
                raise _Unsupported
            if not isinstance(node.left, CrowdFilterNode):
                raise _Unsupported
            if not self._machine_only(node.right):
                raise _Unsupported
            join = node
            node = node.left
        if not isinstance(node, CrowdFilterNode):
            raise _Unsupported
        if not contains_crowd_predicate(node.predicate):
            # Degenerate crowd filter over a machine predicate: the barrier
            # path already vectorizes it without any crowd purchase.
            raise _Unsupported
        if not self._machine_only(node.child):
            raise _Unsupported
        predicate: Expression = node.predicate
        prefix: Expression | None = None
        if not isinstance(predicate, CrowdPredicate):
            split = self._machine_prefix(predicate)
            if split is None or not isinstance(split[1], CrowdPredicate):
                # Multi-crowd-conjunct trees (and OR/NOT shapes) keep the
                # barrier's short-circuit purchase order.
                raise _Unsupported
            prefix, predicate = split
        return _Pipeline(
            filter_node=node,
            prefix=prefix,
            predicate=predicate,
            join=join,
            order=order,
            project=project,
            distinct=distinct,
            limit=limit,
        )

    @staticmethod
    def _machine_only(node: PlanNode) -> bool:
        """True when the subtree buys no crowd answers and draws no RNG."""
        if isinstance(node, (CrowdFilterNode, CrowdJoinNode, CrowdOrderNode, FillNode)):
            return False
        if isinstance(node, FilterNode) and contains_crowd_predicate(node.predicate):
            return False
        if isinstance(node, JoinNode) and contains_crowd_predicate(node.condition):
            return False
        return all(StreamingExecutor._machine_only(c) for c in node.children())

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _build_probe(
        self,
        left_schema: Schema,
        right_schema: Schema,
        right_rows: list[dict[str, Any]],
        condition: Expression,
    ):
        """Probe closure for one left row; hash side is built eagerly.

        Match emission order per left row equals the barrier join's (right
        insertion order), so streamed output is row-identical.
        """
        split = self._equi_split(condition, left_schema, right_schema)
        if split is None:

            def nested(lrow: dict[str, Any]) -> list[dict[str, Any]]:
                out = []
                for rrow in right_rows:
                    merged = {**lrow, **rrow}
                    if condition.evaluate(merged) is True:
                        out.append(merged)
                return out

            return nested
        keys, residual = split
        lcols = [a for a, _ in keys]
        rcols = [b for _, b in keys]
        index: dict[tuple[Any, ...], list[int]] = {}
        for i, rrow in enumerate(right_rows):
            key = self._join_key([rrow[c] for c in rcols])
            if key is not None:
                index.setdefault(key, []).append(i)
        res_expr = conjoin(residual) if residual else None

        def probe(lrow: dict[str, Any]) -> list[dict[str, Any]]:
            key = self._join_key([lrow[c] for c in lcols])
            if key is None:
                return []
            out = []
            for i in index.get(key, ()):
                merged = {**lrow, **right_rows[i]}
                if res_expr is None or res_expr.evaluate(merged) is True:
                    out.append(merged)
            return out

        return probe

    def _run_pipeline(
        self, pipe: _Pipeline, stats: ExecutionStats
    ) -> tuple[Schema, list[dict[str, Any]]]:
        """Plan every crowd question, then stream verdict waves into sinks."""
        child_schema, rows = self._run(pipe.filter_node.child, stats)
        probe = None
        schema = child_schema
        if pipe.join is not None:
            right_schema, right_rows = self._run(pipe.join.right, stats)
            clashes = set(child_schema.column_names) & set(right_schema.column_names)
            if clashes:
                raise ExecutionError(
                    f"join inputs share column name(s) {sorted(clashes)}; "
                    "rename columns so names are unique"
                )
            schema = child_schema.join(right_schema, "left", "right")
            probe = self._build_probe(
                child_schema, right_schema, right_rows, pipe.join.condition
            )
        if pipe.order is not None:
            for column, _ascending in pipe.order:
                if column not in schema:
                    raise ExecutionError(f"ORDER BY unknown column {column!r}")
        out_schema = schema.project(pipe.project) if pipe.project is not None else schema

        # TOP-K: pre-sort the candidates so emission order is final order
        # and the limit can cancel everything past the k-th survivor.
        # Stable sort commutes with filtering, so rows match the barrier's
        # filter-then-sort exactly.
        topk = pipe.order is not None and pipe.limit is not None and pipe.join is None
        if topk:
            rows = self._apply_order(rows, pipe.order)
        # ORDER BY without a limit (or above a join) needs every survivor
        # before it can sort: collect, then sort at the end.
        drain = pipe.order is not None and not topk

        # Deterministic planning pass: questions are planned on this thread
        # in row order — the same pool-RNG consumption order as the barrier
        # path — and deduplicated by content signature, so concurrently
        # in-flight rows sharing a question share one task.
        planned: list[tuple[dict[str, Any], bool, str]] = []
        sig_task: dict[str, Task] = {}
        for row in rows:
            if pipe.prefix is not None:
                p = pipe.prefix.evaluate(row)
                if p is False:
                    continue
                # NULL prefixes still buy the crowd answer but poison the
                # row; CROWD_UNKNOWN counts as satisfied (And semantics).
                ok = p is True or is_crowd_unknown(p)
            else:
                ok = True
            question, values = self._crowd_question(pipe.predicate, row)
            signature = signature_of(TaskType.SINGLE_CHOICE, question, (YES, NO))
            if signature not in self._verdicts and signature not in sig_task:
                task = self._plan_task(pipe.predicate, question, values, stats)
                if task is None:
                    self._verdicts[signature] = False  # similarity-pruned
                else:
                    sig_task[signature] = task
            planned.append((row, ok, signature))

        tasks = list(sig_task.values())
        task_sig = {t.task_id: sig for sig, t in sig_task.items()}
        operator = "crowd_join" if pipe.join is not None else "crowd_filter"
        metrics = self.platform.metrics

        out: list[dict[str, Any]] = []
        survivors: list[dict[str, Any]] = []
        seen: set[tuple[Any, ...]] = set()
        state = {"frontier": 0, "done": False}
        resolved_ids: set[str] = set()
        cancelled_ids: set[str] = set()

        def emit(row: dict[str, Any]) -> None:
            matches = probe(row) if probe is not None else [row]
            for merged in matches:
                if drain:
                    survivors.append(merged)
                    continue
                final = (
                    {c: merged[c] for c in pipe.project}
                    if pipe.project is not None
                    else merged
                )
                if pipe.distinct:
                    key = tuple(final[c] for c in out_schema.column_names)
                    if key in seen:
                        continue
                    seen.add(key)
                out.append(final)
                if pipe.limit is not None and len(out) >= pipe.limit:
                    state["done"] = True
                    return

        def advance() -> None:
            # Emission strictly follows planning order: a resolved verdict
            # for row 7 waits until rows 0-6 are decided, keeping output
            # deterministic regardless of wave arrival order.
            while state["frontier"] < len(planned) and not state["done"]:
                row, ok, signature = planned[state["frontier"]]
                if signature not in self._verdicts:
                    return
                state["frontier"] += 1
                if self._verdicts[signature] is True and ok:
                    emit(row)

        def on_batch(batch: list[Task], run_result: Any) -> None:
            for task in batch:
                signature = task_sig.get(task.task_id)
                if signature is None or task.task_id in resolved_ids:
                    continue
                resolved_ids.add(task.task_id)
                answers = run_result.answers.get(task.task_id, [])
                self._verdicts[signature] = self._verdict_from(task, answers)
                stats.crowd_questions += 1
                stats.crowd_answers += len(answers)
            advance()
            in_flight = len(tasks) - len(resolved_ids) - len(cancelled_ids)
            metrics.set_gauge(
                "operators.in_flight", float(in_flight), labels={"operator": operator}
            )

        def cancel(task: Task) -> str | None:
            if state["done"]:
                cancelled_ids.add(task.task_id)
                return "early_termination"
            return None

        if pipe.limit is not None and pipe.limit <= 0:
            state["done"] = True
        advance()  # memoized/pruned verdicts may already decide a prefix

        pstats = self.platform.stats
        cost0 = pstats.cost_spent
        cancelled0 = pstats.tasks_cancelled
        refund0 = pstats.cancel_cost_refunded
        if tasks:
            metrics.set_gauge(
                "operators.in_flight", float(len(tasks)), labels={"operator": operator}
            )
            run_result = self.platform.scheduler.run(
                tasks,
                redundancy=self.redundancy,
                cancel=cancel,
                on_batch=on_batch,
            )
            # Final drain: cache hits materialize only when the run ends,
            # and halted (breaker/budget) batches never reach on_batch —
            # resolve what is still undecided, barrier-style.
            for task in tasks:
                if task.task_id in resolved_ids or task.task_id in cancelled_ids:
                    continue
                signature = task_sig[task.task_id]
                answers = run_result.answers.get(task.task_id, [])
                self._verdicts[signature] = self._verdict_from(task, answers)
                stats.crowd_questions += 1
                stats.crowd_answers += len(answers)
            advance()
            metrics.set_gauge(
                "operators.in_flight", 0.0, labels={"operator": operator}
            )
        stats.crowd_cost += pstats.cost_spent - cost0
        stats.tasks_cancelled += int(pstats.tasks_cancelled - cancelled0)
        stats.cost_avoided += pstats.cancel_cost_refunded - refund0

        if drain:
            ordered = self._apply_order(survivors, pipe.order)
            if pipe.project is not None:
                ordered = [{c: r[c] for c in pipe.project} for r in ordered]
            if pipe.distinct:
                unique = []
                for row in ordered:
                    key = tuple(row[c] for c in out_schema.column_names)
                    if key not in seen:
                        seen.add(key)
                        unique.append(row)
                ordered = unique
            if pipe.limit is not None:
                ordered = ordered[: pipe.limit]
            return out_schema, ordered
        return out_schema, out
