"""Entry point for ``python -m repro``."""

import os
import sys

from repro.cli import main


def _run() -> int:
    try:
        return main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; suppress the noisy
        # traceback and let stdout die quietly (dup2 keeps the interpreter
        # from re-raising on flush at shutdown).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


sys.exit(_run())
