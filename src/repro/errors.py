"""Exception hierarchy for the crowddm library.

All exceptions raised by the library derive from :class:`CrowdDMError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class CrowdDMError(Exception):
    """Base class for every error raised by crowddm."""


class SchemaError(CrowdDMError):
    """Schema definition or validation failed (bad column, type mismatch)."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its column's declared type."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the schema."""


class UnknownTableError(CrowdDMError):
    """A referenced table is not present in the database catalog."""


class DuplicateTableError(CrowdDMError):
    """A table with the same name already exists in the catalog."""


class KeyViolationError(CrowdDMError):
    """Insertion would violate a primary-key constraint."""


class ExpressionError(CrowdDMError):
    """An expression could not be evaluated (bad operands, unknown op)."""


class ParseError(CrowdDMError):
    """CrowdSQL text could not be tokenized or parsed.

    Attributes:
        line: 1-based line of the offending token, if known.
        column: 1-based column of the offending token, if known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class PlanError(CrowdDMError):
    """A logical plan could not be constructed or optimized."""


class ExecutionError(CrowdDMError):
    """A physical plan failed during execution."""


class PlatformError(CrowdDMError):
    """The simulated crowdsourcing platform rejected an operation."""


class BudgetExceededError(PlatformError):
    """The requester's budget cannot cover the requested tasks."""


class NoWorkersAvailableError(PlatformError):
    """No eligible worker is available to answer a task."""


class TaskStateError(PlatformError):
    """A task transition is invalid for its current lifecycle state."""


class RetryExhaustedError(PlatformError):
    """An assignment kept failing (timeout/abandonment) past the retry limit.

    Attributes:
        task_id: The task whose assignment could not be completed.
        attempts: Total attempts made (first try plus retries).
        reason: The fault that killed the final attempt.
        outcomes: Per-attempt outcome strings, oldest first (e.g.
            ``["timeout", "abandoned", "timeout"]``). Empty when the caller
            did not track attempt history.
    """

    def __init__(
        self,
        task_id: str,
        attempts: int,
        reason: str = "",
        outcomes: "list[str] | None" = None,
    ):
        super().__init__("")  # message comes from __str__, built from context
        self.task_id = task_id
        self.attempts = attempts
        self.reason = reason
        self.outcomes = list(outcomes) if outcomes else []

    def __str__(self) -> str:
        if self.outcomes:
            history = ", ".join(self.outcomes)
            detail = f" [{history}]"
        elif self.reason:
            detail = f" ({self.reason})"
        else:
            detail = ""
        return (
            f"task {self.task_id!r}: all {self.attempts} attempt(s) failed{detail}; "
            f"retry budget exhausted"
        )


class FaultPlanError(CrowdDMError):
    """A fault-injection plan is malformed or cannot be applied."""


class CheckpointError(CrowdDMError):
    """A checkpoint could not be written, read, or applied to live state."""


class CacheError(CrowdDMError):
    """The answer cache could not be read, written, or decoded."""


class SimulatedCrash(CrowdDMError):
    """Raised by test/chaos harnesses to model a process kill mid-run.

    Deliberately *not* a recoverable library error: harnesses raise it to
    abandon a run at a controlled point and then exercise resume-from-
    checkpoint, mimicking ``kill -9`` without leaving the test process.
    """


class InferenceError(CrowdDMError):
    """A truth-inference algorithm received inconsistent input or diverged."""


class AssignmentError(CrowdDMError):
    """A task-assignment strategy could not produce an assignment."""


class DeductionError(CrowdDMError):
    """The answer-deduction engine received contradictory evidence."""


class ConfigurationError(CrowdDMError):
    """Engine or component configuration is invalid."""


class ServiceError(CrowdDMError):
    """The multi-tenant service layer rejected an operation."""


class AdmissionRejectedError(ServiceError):
    """Admission control refused a work unit (breaker open, quota spent).

    Attributes:
        tenant: Name of the tenant whose unit was refused.
        reason: Short machine-readable reason (breaker name or quota tag).
    """

    def __init__(self, tenant: str, reason: str):
        super().__init__(f"tenant {tenant!r}: work unit rejected ({reason})")
        self.tenant = tenant
        self.reason = reason
