"""Open-world crowd collection (CrowdDB's CROWD TABLE semantics).

Enumeration queries — "list all ice-cream flavors", "find every restaurant
in this district" — have no machine-known universe. Workers contribute
items; duplicates accumulate; and the requester's real question becomes
*when to stop paying*. The surveyed answer is species estimation from the
duplicate structure:

* :func:`good_turing_coverage` — Good–Turing sample coverage: the chance
  the next answer is something already seen.
* :func:`chao92_estimate` — Chao's coverage-based richness estimator
  (the one the crowd-enumeration literature adopted), with :func:`chao84_estimate`
  as the simpler f1^2/(2 f2) variant.

:class:`CrowdCollect` drives the loop against collector workers whose
knowledge is a Zipf-weighted subset of the true universe (popular items are
known to many workers — the skew that makes the tail expensive).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.instrument import operator_span
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.workers.models import CollectorModel
from repro.workers.pool import WorkerPool


def good_turing_coverage(frequencies: Counter) -> float:
    """Estimated sample coverage: 1 - (singletons / observations)."""
    n = sum(frequencies.values())
    if n == 0:
        return 0.0
    f1 = sum(1 for c in frequencies.values() if c == 1)
    return max(0.0, 1.0 - f1 / n)


def chao84_estimate(frequencies: Counter) -> float:
    """Chao1984 lower-bound richness: D + f1^2 / (2 f2)."""
    distinct = len(frequencies)
    f1 = sum(1 for c in frequencies.values() if c == 1)
    f2 = sum(1 for c in frequencies.values() if c == 2)
    if f2 == 0:
        return distinct + f1 * (f1 - 1) / 2.0
    return distinct + f1 * f1 / (2.0 * f2)


def chao92_estimate(frequencies: Counter) -> float:
    """Chao1992 coverage-based richness estimator.

    N_hat = D / C + n (1 - C) / C * gamma^2, where C is Good–Turing
    coverage and gamma^2 the coefficient of variation of frequencies.
    Falls back to Chao84 when coverage is zero (all singletons).
    """
    n = sum(frequencies.values())
    distinct = len(frequencies)
    if n == 0:
        return 0.0
    coverage = good_turing_coverage(frequencies)
    if coverage <= 0.0:
        return chao84_estimate(frequencies)
    base = distinct / coverage
    counts = np.array(list(frequencies.values()), dtype=float)
    mean = counts.mean()
    gamma_sq = max(0.0, float(counts.var() / (mean * mean)) if mean > 0 else 0.0)
    return base + n * (1.0 - coverage) / coverage * gamma_sq


@dataclass
class CollectResult:
    """Outcome of an enumeration run."""

    items: list[Any]                     # distinct items, first-seen order
    frequencies: Counter = field(default_factory=Counter)
    queries_issued: int = 0
    cost: float = 0.0
    richness_trajectory: list[tuple[int, int, float]] = field(default_factory=list)
    # (queries, distinct_seen, chao92_estimate) checkpoints

    @property
    def distinct_count(self) -> int:
        return len(self.items)

    @property
    def coverage(self) -> float:
        return good_turing_coverage(self.frequencies)

    @property
    def estimated_richness(self) -> float:
        return chao92_estimate(self.frequencies)

    def recall_against(self, universe: Sequence[Any]) -> float:
        """Fraction of the true universe discovered."""
        if not universe:
            return 1.0
        return len(set(self.items) & set(universe)) / len(set(universe))


def bind_zipf_knowledge(
    pool: WorkerPool,
    universe: Sequence[Any],
    knowledge_size: int,
    zipf_s: float = 1.2,
    seed: int | None = None,
) -> None:
    """Give each CollectorModel worker a Zipf-weighted subset of the universe.

    Item i (0-based popularity rank) is sampled with weight (i+1)^-s, so
    every worker knows the popular head and few know the tail.
    """
    if knowledge_size < 1 or knowledge_size > len(universe):
        raise ConfigurationError("knowledge_size must be in [1, len(universe)]")
    rng = np.random.default_rng(seed)
    weights = np.array([(i + 1) ** (-zipf_s) for i in range(len(universe))])
    weights /= weights.sum()
    for worker in pool:
        if isinstance(worker.model, CollectorModel):
            picks = rng.choice(
                len(universe), size=knowledge_size, replace=False, p=weights
            )
            worker.model.bind_knowledge(tuple(universe[int(i)] for i in picks))


class CrowdCollect:
    """Open-world enumeration operator.

    Args:
        platform: Marketplace whose pool contains CollectorModel workers.
        question: The enumeration prompt.
        checkpoint_every: Record a richness checkpoint every N queries.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        question: str,
        checkpoint_every: int = 10,
    ):
        self.platform = platform
        self.question = question
        self.checkpoint_every = max(1, checkpoint_every)

    def run(
        self,
        max_queries: int,
        stop_at_coverage: float | None = None,
    ) -> CollectResult:
        """Issue up to *max_queries* COLLECT tasks.

        Args:
            max_queries: Budget in contribution requests.
            stop_at_coverage: Optional early stop when Good–Turing coverage
                reaches this value — "pay until the crowd runs dry".
        """
        if max_queries < 1:
            raise ConfigurationError("max_queries must be >= 1")
        with operator_span(
            self.platform, "collect", max_queries=max_queries
        ) as span:
            before = self.platform.stats.cost_spent
            result = CollectResult(items=[])
            seen: set[Any] = set()
            # Under a parallel batch runtime, contribution requests go out in
            # waves of batch_size; a posted wave is paid for in full, so the
            # coverage early-stop is only evaluated between waves (the real
            # platform semantics: you cannot unpost a HIT batch).
            wave_size = (
                self.platform.scheduler.config.batch_size
                if self.platform.parallel_batching
                else 1
            )
            q = 0
            while q < max_queries:
                wave = [
                    Task(TaskType.COLLECT, question=self.question)
                    for _ in range(min(wave_size, max_queries - q))
                ]
                collected = self.platform.collect_batch(wave, redundancy=1)
                for task in wave:
                    delivered = collected.get(task.task_id, [])
                    q += 1
                    if not delivered:
                        # Skip/degrade failure policy: a query that bought no
                        # contribution still counts as issued.
                        result.queries_issued = q
                        continue
                    answer = delivered[0]
                    result.queries_issued = q
                    if answer.value is not None:
                        result.frequencies[answer.value] += 1
                        if answer.value not in seen:
                            seen.add(answer.value)
                            result.items.append(answer.value)
                    if q % self.checkpoint_every == 0:
                        result.richness_trajectory.append(
                            (q, len(seen), chao92_estimate(result.frequencies))
                        )
                if stop_at_coverage is not None and q >= 5:
                    if good_turing_coverage(result.frequencies) >= stop_at_coverage:
                        break
            result.cost = self.platform.stats.cost_spent - before
            span.set_tag("queries", result.queries_issued)
            span.set_tag("distinct", result.distinct_count)
            span.set_tag("coverage", result.coverage)
            return result
