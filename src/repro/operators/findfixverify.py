"""Find–Fix–Verify: the canonical multi-stage crowd workflow (Soylent).

Open-ended crowd work (proofreading, shortening, rewriting) fails with a
single "fix this text" task: lazy workers under-edit and eager workers
over-edit. The Find–Fix–Verify pattern the tutorial's task-design section
highlights splits the work into three independently-agreed stages:

* **Find** — workers independently point at a problem span; only spans
  with independent agreement move on.
* **Fix** — a different set of workers proposes corrections for the agreed
  span, producing a candidate set.
* **Verify** — workers vote among the candidates (and the original), and
  the winner is applied.

This module implements the loop for word-level text correction against the
simulated platform: documents carry hidden per-position corrections, the
Find stage is a position-choice task, Fix is free-text, and Verify is a
vote. The process iterates until Find agrees there is nothing left (or a
round cap is hit).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference

NO_ERROR = "none"


@dataclass
class FfvDocument:
    """A document with hidden ground-truth corrections.

    Attributes:
        words: The (possibly corrupted) text as a word list.
        corrections: position -> correct word, for each planted error.
    """

    words: list[str]
    corrections: dict[int, str] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return " ".join(self.words)


@dataclass
class FfvResult:
    """Outcome of a Find–Fix–Verify run over one or more documents."""

    corrected: list[list[str]]
    find_questions: int = 0
    fix_questions: int = 0
    verify_questions: int = 0
    rounds: int = 0
    cost: float = 0.0

    @property
    def total_questions(self) -> int:
        return self.find_questions + self.fix_questions + self.verify_questions

    def residual_errors(self, documents: Sequence[FfvDocument]) -> int:
        """Planted errors still uncorrected after the run."""
        residual = 0
        for doc, words in zip(documents, self.corrected):
            for position, correct in doc.corrections.items():
                if words[position] != correct:
                    residual += 1
        return residual


class FindFixVerify:
    """Word-level Find–Fix–Verify text correction.

    Args:
        platform: Marketplace.
        find_redundancy: Answers per Find round; a position must win a
            strict majority to advance (independent agreement).
        fix_candidates: Workers asked for a correction per agreed span.
        verify_redundancy: Votes in the Verify stage.
        inference: Aggregation for Verify votes.
        max_rounds_per_document: Cap on Find rounds per document.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        find_redundancy: int = 3,
        fix_candidates: int = 3,
        verify_redundancy: int = 3,
        inference: TruthInference | None = None,
        max_rounds_per_document: int = 10,
    ):
        if min(find_redundancy, fix_candidates, verify_redundancy) < 1:
            raise ConfigurationError("stage redundancies must be >= 1")
        if max_rounds_per_document < 1:
            raise ConfigurationError("max_rounds_per_document must be >= 1")
        self.platform = platform
        self.find_redundancy = find_redundancy
        self.fix_candidates = fix_candidates
        self.verify_redundancy = verify_redundancy
        self.inference = inference or MajorityVote()
        self.max_rounds_per_document = max_rounds_per_document

    # ------------------------------------------------------------------ #

    def _find(self, words: list[str], remaining: dict[int, str], result: FfvResult) -> int | None:
        """One Find round: agreed problem position, or None for 'clean'."""
        options = tuple([NO_ERROR] + [f"pos{p}" for p in range(len(words))])
        truth = NO_ERROR if not remaining else f"pos{min(remaining)}"
        task = Task(
            TaskType.SINGLE_CHOICE,
            question=f"Which word (if any) is wrong? Text: {' '.join(words)}",
            options=options,
            truth=truth,
        )
        answers = self.platform.collect([task], redundancy=self.find_redundancy)
        result.find_questions += self.find_redundancy
        counts = Counter(a.value for a in answers[task.task_id])
        winner, votes = counts.most_common(1)[0]
        # Independent agreement: a strict majority must point at the same span.
        if votes * 2 <= self.find_redundancy or winner == NO_ERROR:
            return None
        return int(str(winner)[3:])

    def _fix(self, words: list[str], position: int, correct: str | None, result: FfvResult) -> list[str]:
        """Fix stage: candidate corrections from independent workers."""
        task = Task(
            TaskType.FILL,
            question=(
                f"Suggest a replacement for word #{position} "
                f"({words[position]!r}) in: {' '.join(words)}"
            ),
            truth=correct if correct is not None else words[position],
        )
        answers = self.platform.collect([task], redundancy=self.fix_candidates)
        result.fix_questions += self.fix_candidates
        candidates = []
        for answer in answers[task.task_id]:
            if answer.value and answer.value not in candidates:
                candidates.append(answer.value)
        return candidates

    def _verify(
        self,
        words: list[str],
        position: int,
        candidates: list[str],
        correct: str | None,
        result: FfvResult,
    ) -> str:
        """Verify stage: vote among candidates + the original word."""
        options = tuple(dict.fromkeys(candidates + [words[position]]))
        if len(options) == 1:
            return options[0]
        truth = correct if correct is not None and correct in options else options[0]
        task = Task(
            TaskType.SINGLE_CHOICE,
            question=(
                f"Best word for slot #{position} in: {' '.join(words)}"
            ),
            options=options,
            truth=truth,
        )
        answers = self.platform.collect([task], redundancy=self.verify_redundancy)
        result.verify_questions += self.verify_redundancy
        inferred = self.inference.infer(answers)
        return inferred.truths[task.task_id]

    # ------------------------------------------------------------------ #

    def run(self, documents: Sequence[FfvDocument]) -> FfvResult:
        """Correct *documents*; returns corrected word lists + accounting."""
        if not documents:
            raise ConfigurationError("no documents")
        before = self.platform.stats.cost_spent
        result = FfvResult(corrected=[])
        for doc in documents:
            words = list(doc.words)
            remaining = dict(doc.corrections)
            for _round in range(self.max_rounds_per_document):
                result.rounds += 1
                position = self._find(words, remaining, result)
                if position is None:
                    break
                correct = remaining.get(position)
                candidates = self._fix(words, position, correct, result)
                if candidates:
                    chosen = self._verify(words, position, candidates, correct, result)
                    words[position] = chosen
                if position in remaining and words[position] == remaining[position]:
                    del remaining[position]
            result.corrected.append(words)
        result.cost = self.platform.stats.cost_spent - before
        return result


def proofreading_dataset(
    n_documents: int = 10,
    words_per_document: int = 12,
    errors_per_document: int = 2,
    seed: int | None = None,
) -> list[FfvDocument]:
    """Documents with planted word-level corruptions and known corrections."""
    import numpy as np

    if errors_per_document >= words_per_document:
        raise ConfigurationError("need fewer errors than words")
    rng = np.random.default_rng(seed)
    vocabulary = [f"word{i:02d}" for i in range(60)]
    documents = []
    for _ in range(n_documents):
        words = [vocabulary[int(i)] for i in rng.integers(len(vocabulary), size=words_per_document)]
        positions = rng.choice(words_per_document, size=errors_per_document, replace=False)
        corrections = {}
        for position in sorted(int(p) for p in positions):
            corrections[position] = words[position]
            words[position] = words[position] + "X"  # visible corruption
        documents.append(FfvDocument(words=words, corrections=corrections))
    return documents
