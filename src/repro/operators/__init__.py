"""Crowd-powered operators: filter, join, sort, top-k, count, collect, fill."""

from repro.operators.categorize import CategorizeResult, CrowdCategorize
from repro.operators.collect import (
    CollectResult,
    CrowdCollect,
    bind_zipf_knowledge,
    chao84_estimate,
    chao92_estimate,
    good_turing_coverage,
)
from repro.operators.count import CountResult, CrowdCount
from repro.operators.fill import CrowdFill, FillResult
from repro.operators.findfixverify import (
    FfvDocument,
    FfvResult,
    FindFixVerify,
    proofreading_dataset,
)
from repro.operators.filter import (
    NO,
    YES,
    AdaptiveFilter,
    CrowdFilter,
    FilterResult,
    FixedKFilter,
)
from repro.operators.join import CrowdJoin, JoinResult, crossing_join
from repro.operators.plan import CrowdPlanner, PlanResult, optimal_path, path_score
from repro.operators.schema_matching import CrowdSchemaMatcher, MatchingResult
from repro.operators.skyline import CrowdSkyline, SkylineResult, true_skyline
from repro.operators.sort import (
    CrowdComparator,
    SortResult,
    all_pairs_sort,
    hybrid_sort,
    merge_sort_crowd,
    rating_sort,
)
from repro.operators.topk import (
    TopKResult,
    expected_tournament_cost,
    topk_tournament,
    tournament_max,
)

__all__ = [
    "NO",
    "YES",
    "AdaptiveFilter",
    "CategorizeResult",
    "CollectResult",
    "CountResult",
    "CrowdCategorize",
    "CrowdCollect",
    "CrowdComparator",
    "CrowdCount",
    "CrowdFill",
    "CrowdFilter",
    "CrowdJoin",
    "CrowdPlanner",
    "CrowdSchemaMatcher",
    "CrowdSkyline",
    "FfvDocument",
    "FfvResult",
    "FindFixVerify",
    "FillResult",
    "FilterResult",
    "FixedKFilter",
    "JoinResult",
    "MatchingResult",
    "PlanResult",
    "SkylineResult",
    "SortResult",
    "TopKResult",
    "all_pairs_sort",
    "bind_zipf_knowledge",
    "chao84_estimate",
    "chao92_estimate",
    "crossing_join",
    "expected_tournament_cost",
    "good_turing_coverage",
    "hybrid_sort",
    "merge_sort_crowd",
    "optimal_path",
    "path_score",
    "proofreading_dataset",
    "rating_sort",
    "topk_tournament",
    "true_skyline",
    "tournament_max",
]
