"""Crowd-powered selection/filtering (the CrowdScreen family).

Decide, for every item, whether it satisfies a predicate only humans can
evaluate ("does this photo show a mountain?"). Strategies differ in how
many answers they buy per item:

* :class:`FixedKFilter` — always k answers, majority vote. Simple,
  predictable cost, wastes money on easy items.
* :class:`AdaptiveFilter` — sequential strategy: keep asking while the
  evidence is indecisive (|yes - no| < margin), stop early otherwise, with
  a hard per-item cap. This is the ladder/grid strategy shape from
  CrowdScreen, where most items terminate after 2 agreeing answers.

Both emit SINGLE_CHOICE yes/no tasks and share the same result type, so
the F6 benchmark can sweep them on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.obs.instrument import operator_span
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, Task, TaskType

YES = "yes"
NO = "no"


@dataclass
class FilterResult:
    """Outcome of a crowd filter over a set of items."""

    decisions: dict[int, bool]            # item index -> predicate verdict
    questions_asked: int
    cost: float
    answers_by_item: dict[int, list[Answer]] = field(default_factory=dict)

    @property
    def kept(self) -> list[int]:
        return sorted(i for i, keep in self.decisions.items() if keep)

    def accuracy_against(self, truth: Sequence[bool]) -> float:
        """Fraction of items whose verdict matches ground truth."""
        hits = sum(
            1 for i, verdict in self.decisions.items() if verdict == bool(truth[i])
        )
        return hits / len(self.decisions) if self.decisions else 0.0


def _make_task(
    item: Any,
    index: int,
    question: str,
    truth: bool | None,
    difficulty: float,
) -> Task:
    return Task(
        TaskType.SINGLE_CHOICE,
        question=f"{question} — item: {item}",
        options=(YES, NO),
        payload={"item_index": index},
        truth=(YES if truth else NO) if truth is not None else None,
        difficulty=difficulty,
    )


class CrowdFilter:
    """Shared construction for crowd filters.

    Args:
        platform: Marketplace to buy answers from.
        question: The human-evaluable predicate text.
        truth_fn: Maps an item to its ground-truth verdict (simulation
            only; drives worker models, never the decision logic).
        difficulty_fn: Optional per-item difficulty in [0, 1).
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        question: str,
        truth_fn: Callable[[Any], bool] | None = None,
        difficulty_fn: Callable[[Any], float] | None = None,
    ):
        self.platform = platform
        self.question = question
        self.truth_fn = truth_fn
        self.difficulty_fn = difficulty_fn

    def _task_for(self, item: Any, index: int) -> Task:
        truth = self.truth_fn(item) if self.truth_fn is not None else None
        difficulty = self.difficulty_fn(item) if self.difficulty_fn is not None else 0.0
        return _make_task(item, index, self.question, truth, difficulty)

    def _stamp(self, span: Any, items: Sequence[Any], result: FilterResult) -> None:
        """Tag the operator span with outcome stats (accuracy when truth is known)."""
        if not self.platform.tracer.enabled:
            return
        span.set_tag("questions", result.questions_asked)
        span.set_tag("kept", len(result.kept))
        if self.truth_fn is not None:
            truth = [bool(self.truth_fn(item)) for item in items]
            span.set_tag("accuracy", result.accuracy_against(truth))


class FixedKFilter(CrowdFilter):
    """k answers per item, majority decides (ties -> not kept)."""

    def __init__(self, *args: Any, redundancy: int = 3, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.redundancy = redundancy

    def run(self, items: Sequence[Any]) -> FilterResult:
        """Filter *items* with k answers each; majority decides."""
        with operator_span(
            self.platform,
            "filter",
            strategy="fixed_k",
            items=len(items),
            redundancy=self.redundancy,
        ) as span:
            before = self.platform.stats.cost_spent
            tasks = [self._task_for(item, i) for i, item in enumerate(items)]
            collected = self.platform.collect_batch(tasks, redundancy=self.redundancy)
            decisions: dict[int, bool] = {}
            answers_by_item: dict[int, list[Answer]] = {}
            questions = 0
            for i, task in enumerate(tasks):
                # Under skip/degrade failure policies a task may come back
                # with no answers; treat it as "not kept" instead of crashing.
                answers = collected.get(task.task_id, [])
                answers_by_item[i] = answers
                questions += len(answers)
                yes_votes = sum(1 for a in answers if a.value == YES)
                decisions[i] = yes_votes * 2 > len(answers)
            result = FilterResult(
                decisions=decisions,
                questions_asked=questions,
                cost=self.platform.stats.cost_spent - before,
                answers_by_item=answers_by_item,
            )
            self._stamp(span, items, result)
            return result


class AdaptiveFilter(CrowdFilter):
    """Sequential filter: stop once |yes - no| reaches *margin* (or at cap).

    With margin=2 and honest workers this terminates most items after two
    agreeing answers — the cost profile that makes adaptive strategies
    dominate fixed-k at equal accuracy.
    """

    def __init__(
        self,
        *args: Any,
        margin: int = 2,
        max_answers: int = 7,
        **kwargs: Any,
    ):
        super().__init__(*args, **kwargs)
        if margin < 1:
            raise ConfigurationError("margin must be >= 1")
        if max_answers < margin:
            raise ConfigurationError("max_answers must be >= margin")
        self.margin = margin
        self.max_answers = max_answers

    def run(self, items: Sequence[Any]) -> FilterResult:
        """Filter *items* with sequential early-stopping vote collection.

        With a parallel batch runtime attached to the platform, undecided
        items are advanced breadth-first: each wave buys one more answer for
        *every* open item as a single batch, so a wave costs one round of
        simulated latency instead of one per answer.
        """
        with operator_span(
            self.platform,
            "filter",
            strategy="adaptive",
            items=len(items),
            margin=self.margin,
            max_answers=self.max_answers,
        ) as span:
            if self.platform.parallel_batching:
                result = self._run_waves(items)
            else:
                result = self._run_sequential(items)
            self._stamp(span, items, result)
            return result

    def _run_sequential(self, items: Sequence[Any]) -> FilterResult:
        """One item at a time, buying answers until the margin is reached."""
        before = self.platform.stats.cost_spent
        decisions: dict[int, bool] = {}
        answers_by_item: dict[int, list[Answer]] = {}
        questions = 0
        for i, item in enumerate(items):
            task = self._task_for(item, i)
            self.platform.publish([task])
            yes_votes = 0
            no_votes = 0
            answers: list[Answer] = []
            while abs(yes_votes - no_votes) < self.margin and len(answers) < self.max_answers:
                answer = self.platform.ask(task)
                answers.append(answer)
                questions += 1
                if answer.value == YES:
                    yes_votes += 1
                else:
                    no_votes += 1
            decisions[i] = yes_votes > no_votes
            answers_by_item[i] = answers
            task.complete()
        return FilterResult(
            decisions=decisions,
            questions_asked=questions,
            cost=self.platform.stats.cost_spent - before,
            answers_by_item=answers_by_item,
        )

    def _run_waves(self, items: Sequence[Any]) -> FilterResult:
        """Breadth-first adaptive filtering over the batch runtime."""
        before = self.platform.stats.cost_spent
        tasks = [self._task_for(item, i) for i, item in enumerate(items)]
        answers_by_item: dict[int, list[Answer]] = {i: [] for i in range(len(tasks))}
        votes = {i: [0, 0] for i in range(len(tasks))}  # [yes, no]
        open_items = list(range(len(tasks)))
        questions = 0
        while open_items:
            wave = [tasks[i] for i in open_items]
            collected = self.platform.collect_batch(wave, redundancy=1, complete=False)
            still_open: list[int] = []
            for i in open_items:
                delivered = collected.get(tasks[i].task_id, [])
                if not delivered:
                    # Skip/degrade failure policy: no answer this wave means
                    # the task is unservable — close the item on current votes.
                    continue
                answer = delivered[0]
                answers_by_item[i].append(answer)
                questions += 1
                votes[i][0 if answer.value == YES else 1] += 1
                yes_votes, no_votes = votes[i]
                undecided = abs(yes_votes - no_votes) < self.margin
                if undecided and len(answers_by_item[i]) < self.max_answers:
                    still_open.append(i)
            open_items = still_open
        for task in tasks:
            task.complete()
        decisions = {i: votes[i][0] > votes[i][1] for i in range(len(tasks))}
        return FilterResult(
            decisions=decisions,
            questions_asked=questions,
            cost=self.platform.stats.cost_spent - before,
            answers_by_item=answers_by_item,
        )
