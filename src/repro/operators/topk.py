"""Crowd-powered MAX and top-k (tournament algorithms).

Finding the best item does not require a full sort: a single-elimination
tournament uses n-1 pairwise "games" (fan-in 2), or fewer rounds with wider
groups judged by round-robin within the group. Top-k repeats the tournament
with the comparator's cache so each subsequent winner costs only the
replayed path, the standard heap-of-tournaments trick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.latency.rounds import rounds_lower_bound
from repro.obs.instrument import operator_span
from repro.operators.sort import CrowdComparator


@dataclass
class TopKResult:
    """Outcome of a crowd max/top-k run."""

    winners: list[int]            # item indices, best first
    comparisons_asked: int
    answers_bought: int
    cost: float
    rounds: int


def _group_winner(comparator: CrowdComparator, group: list[int]) -> int:
    """Round-robin within a group; Copeland winner (position tie-break)."""
    if len(group) == 1:
        return group[0]
    wins = {idx: 0 for idx in group}
    for x in range(len(group)):
        for y in range(x + 1, len(group)):
            if comparator.above(group[x], group[y]):
                wins[group[x]] += 1
            else:
                wins[group[y]] += 1
    return max(group, key=lambda idx: (wins[idx], -group.index(idx)))


def tournament_max(
    comparator: CrowdComparator,
    fan_in: int = 2,
    candidates: list[int] | None = None,
) -> TopKResult:
    """Single-elimination tournament over the items.

    Args:
        comparator: The (caching) crowd comparator.
        fan_in: Group size per round; larger = fewer rounds (lower latency)
            but more comparisons per round (higher cost).
        candidates: Restrict to a subset of item indices.
    """
    if fan_in < 2:
        raise ConfigurationError("fan_in must be >= 2")
    pool = list(candidates) if candidates is not None else list(range(len(comparator.items)))
    if not pool:
        raise ConfigurationError("no candidates to run a tournament over")
    with operator_span(
        comparator.platform, "topk", strategy="max", items=len(pool), fan_in=fan_in
    ) as span:
        before_cost = comparator.platform.stats.cost_spent
        before_asked = comparator.comparisons_asked
        before_answers = comparator.answers_bought
        remaining = pool
        rounds = 0
        while len(remaining) > 1:
            groups = [remaining[s : s + fan_in] for s in range(0, len(remaining), fan_in)]
            # One tournament round = one batch: all intra-group games of the
            # round are independent, so a parallel runtime plays them at once.
            comparator.prefetch(
                [
                    (group[x], group[y])
                    for group in groups
                    for x in range(len(group))
                    for y in range(x + 1, len(group))
                ]
            )
            remaining = [_group_winner(comparator, group) for group in groups]
            rounds += 1
        span.set_tag("rounds", rounds)
        return TopKResult(
            winners=[remaining[0]],
            comparisons_asked=comparator.comparisons_asked - before_asked,
            answers_bought=comparator.answers_bought - before_answers,
            cost=comparator.platform.stats.cost_spent - before_cost,
            rounds=rounds,
        )


def topk_tournament(
    comparator: CrowdComparator,
    k: int,
    fan_in: int = 2,
) -> TopKResult:
    """Top-k by repeated tournaments with comparison reuse.

    After extracting a winner, it is removed and the tournament re-runs
    over the remainder; the comparator's cache means only comparisons along
    the removed winner's path are newly purchased (O(log n) per extra
    winner at fan-in 2).
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    n = len(comparator.items)
    if k > n:
        raise ConfigurationError(f"k={k} exceeds {n} items")
    with operator_span(
        comparator.platform, "topk", strategy="topk", items=n, k=k, fan_in=fan_in
    ) as span:
        before_cost = comparator.platform.stats.cost_spent
        before_asked = comparator.comparisons_asked
        before_answers = comparator.answers_bought
        winners: list[int] = []
        candidates = list(range(n))
        total_rounds = 0
        for _ in range(k):
            result = tournament_max(comparator, fan_in=fan_in, candidates=candidates)
            winner = result.winners[0]
            winners.append(winner)
            candidates = [c for c in candidates if c != winner]
            total_rounds += result.rounds
            if not candidates:
                break
        span.set_tag("rounds", total_rounds)
        return TopKResult(
            winners=winners,
            comparisons_asked=comparator.comparisons_asked - before_asked,
            answers_bought=comparator.answers_bought - before_answers,
            cost=comparator.platform.stats.cost_spent - before_cost,
            rounds=total_rounds,
        )


def expected_tournament_cost(n_items: int, fan_in: int) -> tuple[int, int]:
    """(comparisons, rounds) a fan-in-f tournament needs for MAX over n items.

    Comparisons: each group of size g plays g*(g-1)/2 games; summed over
    rounds. Rounds: ceil(log_f n).
    """
    if n_items < 1 or fan_in < 2:
        raise ConfigurationError("need n_items >= 1 and fan_in >= 2")
    comparisons = 0
    remaining = n_items
    while remaining > 1:
        groups_of_f, leftover = divmod(remaining, fan_in)
        comparisons += groups_of_f * (fan_in * (fan_in - 1) // 2)
        if leftover > 1:
            comparisons += leftover * (leftover - 1) // 2
        remaining = groups_of_f + (1 if leftover else 0)
    return comparisons, rounds_lower_bound(n_items, fan_in)
