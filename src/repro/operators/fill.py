"""Crowd table completion (the CrowdFill / CNULL-resolution operator).

Walk a table's crowd-unknown cells, buy FILL answers for each, aggregate
with a truth-inference method, and write the winners back. This is the
operator CrowdSQL's executor invokes when a query touches CROWD columns
holding CNULL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.data.table import Table
from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference


@dataclass
class FillResult:
    """Outcome of a table-completion run."""

    filled_cells: int
    questions_asked: int
    cost: float
    values: dict[tuple[int, str], Any] = field(default_factory=dict)
    confidences: dict[tuple[int, str], float] = field(default_factory=dict)


class CrowdFill:
    """Fill a table's CNULL cells with crowdsourced values.

    Args:
        platform: Marketplace.
        truth_fn: ``(row, column) -> value`` ground truth used to drive the
            simulated workers (a real deployment would omit it and rely on
            workers' world knowledge).
        redundancy: Answers per cell.
        inference: Aggregation over the string answers (default majority —
            the standard choice for open-ended fill).
        question_fn: Renders the prompt for a (row, column) cell.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        truth_fn: Callable[[dict[str, Any], str], Any] | None = None,
        redundancy: int = 3,
        inference: TruthInference | None = None,
        question_fn: Callable[[dict[str, Any], str], str] | None = None,
    ):
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.truth_fn = truth_fn
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.question_fn = question_fn or (
            lambda row, column: f"Provide the value of {column!r} for record {row!r}."
        )

    def run(
        self,
        table: Table,
        limit: int | None = None,
        columns: tuple[str, ...] | None = None,
    ) -> FillResult:
        """Resolve up to *limit* CNULL cells of *table* in place.

        When *columns* is given, only cells of those crowd columns are
        resolved (the optimizer prunes fills to referenced columns).
        """
        before = self.platform.stats.cost_spent
        cells = table.cnull_cells()
        if columns is not None:
            wanted = set(columns)
            cells = [(rowid, col) for rowid, col in cells if col in wanted]
        if limit is not None:
            cells = cells[:limit]
        if not cells:
            return FillResult(filled_cells=0, questions_asked=0, cost=0.0)

        tasks: dict[str, tuple[int, str]] = {}
        task_list = []
        for rowid, column in cells:
            row = table.row(rowid).as_dict()
            truth = self.truth_fn(row, column) if self.truth_fn is not None else None
            task = Task(
                TaskType.FILL,
                question=self.question_fn(row, column),
                payload={"table": table.name, "rowid": rowid, "column": column},
                truth=truth,
            )
            tasks[task.task_id] = (rowid, column)
            task_list.append(task)

        collected = self.platform.collect(task_list, redundancy=self.redundancy)
        inferred = self.inference.infer(collected)

        result = FillResult(
            filled_cells=0,
            questions_asked=len(task_list) * self.redundancy,
            cost=0.0,
        )
        for task in task_list:
            rowid, column = tasks[task.task_id]
            value = inferred.truths[task.task_id]
            table.update_cell(rowid, column, value)
            result.values[(rowid, column)] = value
            result.confidences[(rowid, column)] = inferred.confidences.get(
                task.task_id, 0.0
            )
            result.filled_cells += 1
        result.cost = self.platform.stats.cost_spent - before
        return result

    def accuracy_against(
        self,
        result: FillResult,
        expected: dict[tuple[int, str], Any],
    ) -> float:
        """Fraction of filled cells matching *expected* values."""
        common = [cell for cell in result.values if cell in expected]
        if not common:
            return 0.0
        hits = sum(1 for cell in common if result.values[cell] == expected[cell])
        return hits / len(common)
