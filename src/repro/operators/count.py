"""Crowd-powered COUNT / aggregate estimation by sampling.

Counting how many items of a large population satisfy a human-judged
predicate. Instead of filtering everything (cost = n * redundancy), label a
random sample and extrapolate (:mod:`repro.cost.sampling`), trading a
confidence interval for an order-of-magnitude cost cut — the tutorial's
selectivity-estimation narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.cost.sampling import Estimate, estimate_count, sample_indices
from repro.errors import ConfigurationError
from repro.operators.filter import NO, YES
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference


@dataclass
class CountResult:
    """Outcome of a sampling-based crowd count."""

    estimate: Estimate
    sample_indices: list[int]
    questions_asked: int
    cost: float

    @property
    def value(self) -> float:
        return self.estimate.value

    @property
    def interval(self) -> tuple[float, float]:
        return self.estimate.interval


class CrowdCount:
    """Sampling-based count operator.

    Args:
        platform: Marketplace.
        question: The predicate text shown to workers.
        truth_fn: Item -> bool ground truth (simulation only).
        redundancy: Votes per sampled item.
        inference: Vote aggregation (default majority).
        seed: Sampling RNG seed.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        question: str,
        truth_fn: Callable[[Any], bool],
        redundancy: int = 3,
        inference: TruthInference | None = None,
        seed: int | None = None,
    ):
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.question = question
        self.truth_fn = truth_fn
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.rng = np.random.default_rng(seed)

    def run(
        self,
        items: Sequence[Any],
        sample_size: int,
        confidence: float = 0.95,
    ) -> CountResult:
        """Estimate how many of *items* satisfy the predicate."""
        if sample_size < 1:
            raise ConfigurationError("sample_size must be >= 1")
        before = self.platform.stats.cost_spent
        chosen = sample_indices(len(items), sample_size, self.rng)
        tasks = []
        for index in chosen:
            item = items[index]
            tasks.append(
                Task(
                    TaskType.SINGLE_CHOICE,
                    question=f"{self.question} — item: {item}",
                    options=(YES, NO),
                    payload={"item_index": index},
                    truth=YES if self.truth_fn(item) else NO,
                )
            )
        collected = self.platform.collect(tasks, redundancy=self.redundancy)
        inferred = self.inference.infer(collected)
        labels = [inferred.truths[t.task_id] == YES for t in tasks]
        estimate = estimate_count(labels, len(items), confidence)
        return CountResult(
            estimate=estimate,
            sample_indices=chosen,
            questions_asked=len(tasks) * self.redundancy,
            cost=self.platform.stats.cost_spent - before,
        )

    def exact(self, items: Sequence[Any]) -> CountResult:
        """Exhaustive variant (the expensive baseline the sampler beats)."""
        result = self.run(items, sample_size=len(items), confidence=0.999999)
        return result
