"""Crowd-powered sorting (the Qurk CROWDORDER family).

Rank items by a criterion only humans can judge. Implemented strategies,
in the cost/quality order the tutorial discusses:

* :func:`all_pairs_sort` — buy every pairwise comparison, rank by Copeland
  score (win count). Most robust, O(n^2) comparisons.
* :func:`merge_sort_crowd` — comparison-optimal O(n log n) merge sort over
  the crowd comparator. Sensitive to single comparison errors.
* :func:`rating_sort` — one RATE task per item, sort by mean rating.
  O(n) tasks, coarse: close items tie or invert.
* :func:`hybrid_sort` — Qurk's refinement: rating pass first, then buy
  comparisons only for adjacent pairs whose ratings are too close to call.

All strategies share :class:`CrowdComparator`, which caches pair verdicts
and can consult a :class:`~repro.cost.deduction.ComparisonDeducer` so no
implied comparison is ever purchased twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.cost.deduction import ComparisonDeducer
from repro.errors import ConfigurationError
from repro.obs.instrument import operator_span
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference


@dataclass
class SortResult:
    """Outcome of a crowd sort: best-first order plus accounting."""

    order: list[int]                  # item indices, best first
    comparisons_asked: int
    answers_bought: int
    cost: float
    ratings: dict[int, float] = field(default_factory=dict)

    def kendall_tau(self, true_order: Sequence[int]) -> float:
        """Kendall tau-a correlation with a ground-truth order (1 = equal)."""
        position = {item: rank for rank, item in enumerate(self.order)}
        true_position = {item: rank for rank, item in enumerate(true_order)}
        items = list(position)
        n = len(items)
        if n < 2:
            return 1.0
        concordant = 0
        discordant = 0
        for x in range(n):
            for y in range(x + 1, n):
                a, b = items[x], items[y]
                ours = position[a] - position[b]
                truth = true_position[a] - true_position[b]
                if ours * truth > 0:
                    concordant += 1
                elif ours * truth < 0:
                    discordant += 1
        total = n * (n - 1) // 2
        return (concordant - discordant) / total


class CrowdComparator:
    """Buys (and caches) crowd verdicts for "does item i rank above item j?".

    Args:
        platform: Marketplace.
        items: The records being sorted.
        score_fn: Ground-truth utility per item (drives simulated workers
            through the COMPARE payload; never read by the sort logic).
        redundancy: Votes per comparison.
        inference: Vote aggregation (default majority).
        use_deduction: Skip purchases that transitivity already implies.
        question: Task instruction text.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        items: Sequence[Any],
        score_fn: Callable[[Any], float],
        redundancy: int = 3,
        inference: TruthInference | None = None,
        use_deduction: bool = False,
        question: str = "Which item ranks higher?",
    ):
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.items = list(items)
        self.score_fn = score_fn
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.deducer = ComparisonDeducer(strict=False) if use_deduction else None
        self.question = question
        self._cache: dict[tuple[int, int], bool] = {}
        self.comparisons_asked = 0
        self.answers_bought = 0

    def _pair_task(self, key: tuple[int, int]) -> Task:
        left, right = self.items[key[0]], self.items[key[1]]
        left_score, right_score = self.score_fn(left), self.score_fn(right)
        return Task(
            TaskType.COMPARE,
            question=f"{self.question} A: {left} | B: {right}",
            options=("left", "right"),
            payload={
                "left": left,
                "right": right,
                "left_score": left_score,
                "right_score": right_score,
            },
            truth="left" if left_score >= right_score else "right",
        )

    def _store(self, key: tuple[int, int], verdict_low_high: bool) -> None:
        self._cache[key] = verdict_low_high
        if self.deducer is not None:
            if verdict_low_high:
                self.deducer.record(key[0], key[1])
            else:
                self.deducer.record(key[1], key[0])

    def prefetch(self, pairs: Sequence[tuple[int, int]]) -> int:
        """Batch-buy verdicts for *pairs* that are not yet known.

        A no-op unless the platform runs a parallel batch runtime — the
        sequential path keeps its lazy one-comparison-at-a-time behaviour.
        Returns the number of comparisons purchased. Callers that know a
        round of comparisons up front (all-pairs sort, tournament rounds)
        use this so one round costs one batch of simulated latency.
        """
        if not self.platform.parallel_batching:
            return 0
        todo: list[tuple[int, int]] = []
        queued: set[tuple[int, int]] = set()
        for i, j in pairs:
            key = (min(i, j), max(i, j))
            if key in self._cache or key in queued:
                continue
            queued.add(key)
            if self.deducer is not None:
                deduced = self.deducer.infer(key[0], key[1])
                if deduced is not None:
                    self._cache[key] = deduced
                    continue
            todo.append(key)
        if not todo:
            return 0
        tasks = {key: self._pair_task(key) for key in todo}
        collected = self.platform.collect_batch(list(tasks.values()), redundancy=self.redundancy)
        bought = 0
        for key, task in tasks.items():
            answers = collected.get(task.task_id, [])
            bought += len(answers)
            if not answers:
                # Skip/degrade failure policy: leave the pair uncached; a
                # later above() call retries it individually.
                continue
            winner = self.inference.infer(
                {task.task_id: answers}
            ).truths[task.task_id]
            self._store(key, winner == "left")
        self.comparisons_asked += len(todo)
        self.answers_bought += bought
        return len(todo)

    def above(self, i: int, j: int) -> bool:
        """True if item i ranks above item j (buying a task if needed)."""
        if i == j:
            raise ConfigurationError("cannot compare an item to itself")
        key = (min(i, j), max(i, j))
        if key in self._cache:
            verdict_low_high = self._cache[key]
            return verdict_low_high if i == key[0] else not verdict_low_high
        if self.deducer is not None:
            deduced = self.deducer.infer(i, j)
            if deduced is not None:
                self._cache[key] = deduced if i == key[0] else not deduced
                return deduced
        task = self._pair_task(key)
        collected = self.platform.collect_batch([task], redundancy=self.redundancy)
        answers = collected.get(task.task_id, [])
        self.comparisons_asked += 1
        self.answers_bought += len(answers)
        if not answers:
            # Skip/degrade failure policy: no evidence for this comparison —
            # deterministically keep the lower index first instead of crashing.
            self._store(key, True)
            return i == key[0]
        winner = self.inference.infer({task.task_id: answers}).truths[task.task_id]
        verdict_low_high = winner == "left"  # key[0] above key[1]?
        self._store(key, verdict_low_high)
        return verdict_low_high if i == key[0] else not verdict_low_high


def all_pairs_sort(comparator: CrowdComparator) -> SortResult:
    """Every pairwise comparison; rank by Copeland win count."""
    with operator_span(
        comparator.platform, "sort", strategy="all_pairs", items=len(comparator.items)
    ) as span:
        before = comparator.platform.stats.cost_spent
        n = len(comparator.items)
        # All comparisons are known up front — one prefetch makes the whole
        # sort a single batched dispatch under a parallel runtime.
        comparator.prefetch([(i, j) for i in range(n) for j in range(i + 1, n)])
        wins = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if comparator.above(i, j):
                    wins[i] += 1
                else:
                    wins[j] += 1
        order = sorted(range(n), key=lambda idx: (-wins[idx], idx))
        span.set_tag("comparisons", comparator.comparisons_asked)
        return SortResult(
            order=order,
            comparisons_asked=comparator.comparisons_asked,
            answers_bought=comparator.answers_bought,
            cost=comparator.platform.stats.cost_spent - before,
        )


def merge_sort_crowd(comparator: CrowdComparator) -> SortResult:
    """Comparison-optimal merge sort over the crowd comparator."""
    with operator_span(
        comparator.platform, "sort", strategy="merge", items=len(comparator.items)
    ) as span:
        before = comparator.platform.stats.cost_spent

        def merge(left: list[int], right: list[int]) -> list[int]:
            merged: list[int] = []
            li = ri = 0
            while li < len(left) and ri < len(right):
                if comparator.above(left[li], right[ri]):
                    merged.append(left[li])
                    li += 1
                else:
                    merged.append(right[ri])
                    ri += 1
            merged.extend(left[li:])
            merged.extend(right[ri:])
            return merged

        def sort(indices: list[int]) -> list[int]:
            if len(indices) <= 1:
                return indices
            mid = len(indices) // 2
            return merge(sort(indices[:mid]), sort(indices[mid:]))

        order = sort(list(range(len(comparator.items))))
        span.set_tag("comparisons", comparator.comparisons_asked)
        return SortResult(
            order=order,
            comparisons_asked=comparator.comparisons_asked,
            answers_bought=comparator.answers_bought,
            cost=comparator.platform.stats.cost_spent - before,
        )


def rating_sort(
    platform: SimulatedPlatform,
    items: Sequence[Any],
    score_fn: Callable[[Any], float],
    redundancy: int = 3,
    scale: tuple[int, int] = (1, 10),
    question: str = "Rate this item.",
) -> SortResult:
    """One RATE task per item; sort by mean rating (descending).

    Ground-truth scores are mapped linearly onto the scale so simulated
    raters produce calibrated noisy ratings.
    """
    if redundancy < 1:
        raise ConfigurationError("redundancy must be >= 1")
    with operator_span(platform, "sort", strategy="rating", items=len(items)):
        before = platform.stats.cost_spent
        scores = [score_fn(item) for item in items]
        low, high = min(scores), max(scores)
        spread = (high - low) or 1.0
        tasks = []
        for item, score in zip(items, scores):
            scaled = scale[0] + (score - low) / spread * (scale[1] - scale[0])
            tasks.append(
                Task(
                    TaskType.RATE,
                    question=f"{question} {item}",
                    payload={"scale": scale},
                    truth=scaled,
                )
            )
        collected = platform.collect_batch(tasks, redundancy=redundancy)
        ratings = {
            i: float(np.mean([a.value for a in collected[t.task_id]]))
            for i, t in enumerate(tasks)
        }
        order = sorted(range(len(items)), key=lambda i: (-ratings[i], i))
        return SortResult(
            order=order,
            comparisons_asked=0,
            answers_bought=len(items) * redundancy,
            cost=platform.stats.cost_spent - before,
            ratings=ratings,
        )


def hybrid_sort(
    platform: SimulatedPlatform,
    items: Sequence[Any],
    score_fn: Callable[[Any], float],
    redundancy: int = 3,
    scale: tuple[int, int] = (1, 10),
    close_threshold: float = 1.0,
    inference: TruthInference | None = None,
) -> SortResult:
    """Rating pass, then comparisons for rating-adjacent close pairs.

    After the rating sort, any adjacent pair whose mean ratings differ by
    less than *close_threshold* is re-decided with a pairwise comparison
    (one local bubble pass) — Qurk's cost/quality compromise.
    """
    with operator_span(platform, "sort", strategy="hybrid", items=len(items)) as span:
        before = platform.stats.cost_spent
        base = rating_sort(platform, items, score_fn, redundancy, scale)
        comparator = CrowdComparator(
            platform, items, score_fn, redundancy=redundancy, inference=inference
        )
        order = list(base.order)
        # The close adjacent pairs are known after the rating pass; buy their
        # comparisons as one batch before the (order-dependent) bubble pass.
        comparator.prefetch(
            [
                (order[p], order[p + 1])
                for p in range(len(order) - 1)
                if abs(base.ratings[order[p]] - base.ratings[order[p + 1]])
                < close_threshold
            ]
        )
        for position in range(len(order) - 1):
            i, j = order[position], order[position + 1]
            if abs(base.ratings[i] - base.ratings[j]) < close_threshold:
                if not comparator.above(i, j):
                    order[position], order[position + 1] = j, i
        span.set_tag("comparisons", comparator.comparisons_asked)
        return SortResult(
            order=order,
            comparisons_asked=comparator.comparisons_asked,
            answers_bought=base.answers_bought + comparator.answers_bought,
            cost=platform.stats.cost_spent - before,
            ratings=base.ratings,
        )
