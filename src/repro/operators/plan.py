"""Crowd-powered planning: human-guided graph search.

Planning queries ("build me a 3-day itinerary") ask the crowd to make
*sequential* judgments: given a partial plan, which extension is best?
Machines can enumerate candidates but can't score subjective quality; the
human-assisted-graph-search literature the tutorial points to has workers
vote on expansions while the machine maintains the frontier.

:class:`CrowdPlanner` implements the two standard strategies over a
directed graph with hidden edge utilities:

* **greedy** — one partial plan; at each step workers vote among the
  current node's successors (cheapest, myopic);
* **beam** — keep the best *k* partial plans; workers vote among all
  one-step extensions of the beam each round (costlier, less myopic).

Ground truth for the simulated voters is the caller's ``edge_score``;
:func:`optimal_path` computes the DP optimum for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference

Node = Hashable
Graph = Mapping[Node, Sequence[Node]]


def path_score(path: Sequence[Node], edge_score: Callable[[Node, Node], float]) -> float:
    """Total utility of a path."""
    return sum(edge_score(a, b) for a, b in zip(path, path[1:]))


def optimal_path(
    graph: Graph,
    start: Node,
    steps: int,
    edge_score: Callable[[Node, Node], float],
) -> list[Node]:
    """Best fixed-length path from *start* by exhaustive DP (evaluation only)."""
    if steps < 1:
        raise ConfigurationError("steps must be >= 1")
    best: dict[Node, tuple[float, list[Node]]] = {start: (0.0, [start])}
    for _ in range(steps):
        frontier: dict[Node, tuple[float, list[Node]]] = {}
        for node, (score, path) in best.items():
            for successor in graph.get(node, ()):
                candidate = score + edge_score(node, successor)
                if successor not in frontier or candidate > frontier[successor][0]:
                    frontier[successor] = (candidate, path + [successor])
        if not frontier:
            break
        best = frontier
    return max(best.values(), key=lambda pair: pair[0])[1]


@dataclass
class PlanResult:
    """Outcome of a crowd-guided planning run."""

    path: list[Node]
    questions_asked: int
    answers_bought: int
    cost: float
    rounds: int

    def score(self, edge_score: Callable[[Node, Node], float]) -> float:
        """Total hidden utility of the produced path."""
        return path_score(self.path, edge_score)

    def regret(
        self,
        graph: Graph,
        edge_score: Callable[[Node, Node], float],
    ) -> float:
        """Optimal score minus achieved score (0 = optimal plan)."""
        steps = len(self.path) - 1
        if steps < 1:
            return 0.0
        best = optimal_path(graph, self.path[0], steps, edge_score)
        return path_score(best, edge_score) - self.score(edge_score)


class CrowdPlanner:
    """Human-guided search over a successor graph.

    Args:
        platform: Marketplace for expansion votes.
        graph: node -> successor nodes.
        edge_score: Hidden edge utility (drives simulated voters only).
        redundancy: Votes per expansion question.
        inference: Vote aggregation.
        describe: Renders a node for the task prompt.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        graph: Graph,
        edge_score: Callable[[Node, Node], float],
        redundancy: int = 3,
        inference: TruthInference | None = None,
        describe: Callable[[Node], str] = str,
    ):
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.graph = graph
        self.edge_score = edge_score
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.describe = describe

    # ------------------------------------------------------------------ #

    def _vote(self, question: str, candidates: list[tuple[str, float]]) -> str:
        """One expansion vote; candidates are (option key, hidden score)."""
        options = tuple(key for key, _score in candidates)
        truth = max(candidates, key=lambda pair: pair[1])[0]
        task = Task(
            TaskType.SINGLE_CHOICE,
            question=question,
            options=options,
            truth=truth,
        )
        answers = self.platform.collect([task], redundancy=self.redundancy)
        return self.inference.infer(answers).truths[task.task_id]

    def greedy(self, start: Node, steps: int) -> PlanResult:
        """Myopic crowd walk: vote among the current node's successors."""
        if steps < 1:
            raise ConfigurationError("steps must be >= 1")
        before = self.platform.stats.cost_spent
        path = [start]
        questions = 0
        rounds = 0
        for _ in range(steps):
            successors = list(self.graph.get(path[-1], ()))
            if not successors:
                break
            rounds += 1
            if len(successors) == 1:
                path.append(successors[0])
                continue
            candidates = [
                (self.describe(s), self.edge_score(path[-1], s)) for s in successors
            ]
            winner = self._vote(
                f"Best next stop after {self.describe(path[-1])}?", candidates
            )
            questions += 1
            chosen = successors[
                [self.describe(s) for s in successors].index(winner)
            ]
            path.append(chosen)
        return PlanResult(
            path=path,
            questions_asked=questions,
            answers_bought=questions * self.redundancy,
            cost=self.platform.stats.cost_spent - before,
            rounds=rounds,
        )

    def beam(self, start: Node, steps: int, width: int = 3) -> PlanResult:
        """Beam search: workers vote among all one-step beam extensions.

        Each round, every partial plan in the beam is extended by every
        successor; the crowd ranks the extensions by repeated winner-vote
        (one vote selects the best; the remaining beam slots are filled by
        the machine using the votes' runner-up ordering — in simulation,
        by hidden score among the non-winners, which matches the
        "crowd picks the champion, machine keeps diversity" heuristic).
        """
        if steps < 1 or width < 1:
            raise ConfigurationError("steps and width must be >= 1")
        before = self.platform.stats.cost_spent
        beam: list[list[Node]] = [[start]]
        questions = 0
        rounds = 0
        for _ in range(steps):
            extensions: list[list[Node]] = []
            for path in beam:
                for successor in self.graph.get(path[-1], ()):
                    extensions.append(path + [successor])
            if not extensions:
                break
            rounds += 1
            if len(extensions) > 1:
                candidates = [
                    (
                        " -> ".join(self.describe(n) for n in ext),
                        path_score(ext, self.edge_score),
                    )
                    for ext in extensions
                ]
                winner = self._vote("Which partial plan looks best?", candidates)
                questions += 1
                keys = [key for key, _ in candidates]
                champion = extensions[keys.index(winner)]
            else:
                champion = extensions[0]
            others = [e for e in extensions if e is not champion]
            others.sort(key=lambda e: -path_score(e, self.edge_score))
            beam = [champion] + others[: width - 1]
        best = beam[0]
        return PlanResult(
            path=best,
            questions_asked=questions,
            answers_bought=questions * self.redundancy,
            cost=self.platform.stats.cost_spent - before,
            rounds=rounds,
        )
