"""Crowd-powered skyline queries.

The skyline of a set of items under d preference dimensions is the set of
items not *dominated* by any other (dominated = at least as bad on every
dimension and strictly worse on one). When the dimensions are subjective
("more scenic", "more convenient"), each dominance check decomposes into
per-dimension crowd comparisons — the crowdsourced-skyline setting the
tutorial's operator section surveys.

Cost structure implemented here:

* one :class:`~repro.operators.sort.CrowdComparator` per dimension, so
  every pairwise verdict is bought once and cached;
* optional per-dimension transitivity deduction;
* a block-nested-loop skyline with early candidate elimination, which
  skips dominance checks against already-dominated items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.operators.sort import CrowdComparator
from repro.platform.platform import SimulatedPlatform
from repro.quality.truth import TruthInference


@dataclass
class SkylineResult:
    """Outcome of a crowd skyline computation."""

    skyline: list[int]                 # item indices, input order
    comparisons_asked: int
    answers_bought: int
    cost: float
    dominance_checks: int

    def matches(self, expected: Sequence[int]) -> bool:
        """True if the computed skyline equals *expected* (order-free)."""
        return sorted(self.skyline) == sorted(expected)


def true_skyline(scores: Sequence[Sequence[float]]) -> list[int]:
    """Ground-truth skyline of per-item score vectors (higher = better)."""
    n = len(scores)
    skyline = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i == j:
                continue
            if all(scores[j][d] >= scores[i][d] for d in range(len(scores[i]))) and any(
                scores[j][d] > scores[i][d] for d in range(len(scores[i]))
            ):
                dominated = True
                break
        if not dominated:
            skyline.append(i)
    return skyline


class CrowdSkyline:
    """Compute a skyline with crowd comparisons per dimension.

    Args:
        platform: Marketplace.
        items: The records.
        dimension_scores: One ground-truth score function per dimension
            (drives the simulated comparison workers; higher = better).
        redundancy: Votes per comparison.
        inference: Vote aggregation.
        use_deduction: Per-dimension transitivity (skips implied buys).
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        items: Sequence[Any],
        dimension_scores: Sequence[Callable[[Any], float]],
        redundancy: int = 3,
        inference: TruthInference | None = None,
        use_deduction: bool = True,
    ):
        if len(dimension_scores) < 2:
            raise ConfigurationError("a skyline needs at least two dimensions")
        self.platform = platform
        self.items = list(items)
        self.comparators = [
            CrowdComparator(
                platform,
                self.items,
                score_fn,
                redundancy=redundancy,
                inference=inference,
                use_deduction=use_deduction,
                question=f"Which is better on dimension {d}?",
            )
            for d, score_fn in enumerate(dimension_scores)
        ]

    def _dominates(self, candidate: int, other: int) -> bool:
        """Does *candidate* dominate *other* per the crowd's verdicts?

        Crowd comparisons are strict ("ranks above"), so dominance here is
        "candidate above other on every dimension" — the standard
        strict-order reduction used by the crowdsourced-skyline papers.
        """
        return all(comp.above(candidate, other) for comp in self.comparators)

    def run(self) -> SkylineResult:
        """Compute the skyline; returns members and comparison accounting."""
        before_cost = self.platform.stats.cost_spent
        n = len(self.items)
        if n == 0:
            raise ConfigurationError("no items")
        alive = list(range(n))
        dominated: set[int] = set()
        checks = 0
        # Block-nested-loop with symmetric elimination.
        for i in range(n):
            if i in dominated:
                continue
            for j in range(n):
                if i == j or j in dominated or i in dominated:
                    continue
                checks += 1
                if self._dominates(j, i):
                    dominated.add(i)
                    break
                if self._dominates(i, j):
                    dominated.add(j)
        skyline = [i for i in alive if i not in dominated]
        return SkylineResult(
            skyline=skyline,
            comparisons_asked=sum(c.comparisons_asked for c in self.comparators),
            answers_bought=sum(c.answers_bought for c in self.comparators),
            cost=self.platform.stats.cost_spent - before_cost,
            dominance_checks=checks,
        )
