"""Crowd categorization / GROUP BY over human-judged categories.

Assign each item one label from a fixed taxonomy, then group. This is the
crowd GROUP BY the declarative systems expose; it reuses the full quality
stack (redundancy + pluggable truth inference) per item.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.obs.instrument import operator_span
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference


@dataclass
class CategorizeResult:
    """Outcome of a crowd categorization run."""

    labels: dict[int, Any]                 # item index -> category
    groups: dict[Any, list[int]] = field(default_factory=dict)
    questions_asked: int = 0
    cost: float = 0.0
    confidences: dict[int, float] = field(default_factory=dict)

    def accuracy_against(self, truth: Sequence[Any]) -> float:
        """Fraction of items labeled with their true category."""
        if not self.labels:
            return 0.0
        hits = sum(1 for i, label in self.labels.items() if label == truth[i])
        return hits / len(self.labels)


class CrowdCategorize:
    """Categorize items into a fixed label set via the crowd.

    Args:
        platform: Marketplace.
        categories: The taxonomy (task options).
        truth_fn: Item -> true category (simulation only).
        redundancy: Votes per item.
        inference: Vote aggregation (default majority).
        question: Instruction text.
        difficulty_fn: Optional per-item difficulty in [0, 1).
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        categories: Sequence[Any],
        truth_fn: Callable[[Any], Any] | None = None,
        redundancy: int = 3,
        inference: TruthInference | None = None,
        question: str = "Which category fits this item?",
        difficulty_fn: Callable[[Any], float] | None = None,
    ):
        if len(categories) < 2:
            raise ConfigurationError("need at least two categories")
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.categories = tuple(categories)
        self.truth_fn = truth_fn
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.question = question
        self.difficulty_fn = difficulty_fn

    def run(self, items: Sequence[Any]) -> CategorizeResult:
        """Categorize *items*; returns labels, groups, and accounting."""
        with operator_span(
            self.platform,
            "categorize",
            items=len(items),
            categories=len(self.categories),
            redundancy=self.redundancy,
        ) as span:
            before = self.platform.stats.cost_spent
            tasks = []
            for i, item in enumerate(items):
                truth = self.truth_fn(item) if self.truth_fn is not None else None
                if truth is not None and truth not in self.categories:
                    raise ConfigurationError(
                        f"truth {truth!r} for item {i} is not among the categories"
                    )
                difficulty = self.difficulty_fn(item) if self.difficulty_fn else 0.0
                tasks.append(
                    Task(
                        TaskType.SINGLE_CHOICE,
                        question=f"{self.question} — item: {item}",
                        options=self.categories,
                        payload={"item_index": i},
                        truth=truth,
                        difficulty=difficulty,
                    )
                )
            collected = self.platform.collect(tasks, redundancy=self.redundancy)
            inferred = self.inference.infer(collected)

            labels: dict[int, Any] = {}
            confidences: dict[int, float] = {}
            groups: dict[Any, list[int]] = defaultdict(list)
            for i, task in enumerate(tasks):
                label = inferred.truths[task.task_id]
                labels[i] = label
                confidences[i] = inferred.confidences.get(task.task_id, 0.0)
                groups[label].append(i)
            result = CategorizeResult(
                labels=labels,
                groups=dict(groups),
                questions_asked=len(tasks) * self.redundancy,
                cost=self.platform.stats.cost_spent - before,
                confidences=confidences,
            )
            if self.truth_fn is not None and self.platform.tracer.enabled:
                truth_list = [self.truth_fn(item) for item in items]
                span.set_tag("accuracy", result.accuracy_against(truth_list))
            return result
