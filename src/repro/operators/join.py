"""Crowd-powered join / entity resolution (the CrowdER pattern).

Find which records refer to the same real-world entity. Three escalating
configurations, matching the cost-control narrative:

1. **crowd-all-pairs** — ask the crowd about every pair (quadratic cost,
   the baseline nobody ships).
2. **machine pruning** — :class:`~repro.cost.pruning.SimilarityPruner`
   discards obviously-non-matching pairs; the crowd verifies survivors.
3. **pruning + transitivity** — additionally deduce answers from the
   match closure (:class:`~repro.cost.deduction.TransitiveResolver`),
   asking only pairs deduction cannot settle.

Every crowd question is a yes/no SINGLE_CHOICE task answered with
*redundancy* votes and aggregated by a pluggable truth-inference method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cost.deduction import TransitiveResolver
from repro.cost.pruning import CandidatePair, PruningReport, SimilarityPruner
from repro.errors import ConfigurationError
from repro.obs.instrument import operator_span
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference

YES = "yes"
NO = "no"


@dataclass
class JoinResult:
    """Outcome of a crowd join / entity-resolution run."""

    matched_pairs: set[tuple[int, int]]
    clusters: list[set[int]]
    pairs_considered: int
    questions_asked: int
    answers_bought: int
    cost: float
    pruning_report: PruningReport | None = None
    deduced_pairs: int = 0

    def precision_recall_f1(
        self, true_pairs: set[tuple[int, int]]
    ) -> tuple[float, float, float]:
        """Pair-level precision/recall/F1 against ground-truth match pairs."""
        predicted = {(min(a, b), max(a, b)) for a, b in self.matched_pairs}
        truth = {(min(a, b), max(a, b)) for a, b in true_pairs}
        if not predicted and not truth:
            return 1.0, 1.0, 1.0
        tp = len(predicted & truth)
        precision = tp / len(predicted) if predicted else 0.0
        recall = tp / len(truth) if truth else 1.0
        if precision + recall == 0:
            return precision, recall, 0.0
        return precision, recall, 2 * precision * recall / (precision + recall)


class CrowdJoin:
    """Configurable crowd entity-resolution pipeline.

    Args:
        platform: Marketplace for verification questions.
        truth_fn: ``(record_a, record_b) -> bool`` ground truth (drives the
            simulated workers; the pipeline itself never reads it).
        pruner: Machine pruning stage; None = crowd-all-pairs.
        use_transitivity: Deduce pair labels from the match closure.
        redundancy: Votes per crowd question.
        inference: Aggregation method for the votes (default majority).
        key: Renders a record for the task question text.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        truth_fn: Callable[[Any, Any], bool],
        pruner: SimilarityPruner | None = None,
        use_transitivity: bool = False,
        redundancy: int = 3,
        inference: TruthInference | None = None,
        key: Callable[[Any], str] = str,
    ):
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.truth_fn = truth_fn
        self.pruner = pruner
        self.use_transitivity = use_transitivity
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.key = key

    # ------------------------------------------------------------------ #

    def _candidate_pairs(
        self, records: Sequence[Any]
    ) -> tuple[list[CandidatePair], PruningReport | None]:
        if self.pruner is not None:
            return self.pruner.candidate_pairs(records)
        n = len(records)
        pairs = [
            CandidatePair(i, j, 1.0) for i in range(n) for j in range(i + 1, n)
        ]
        return pairs, None

    def _pair_task(self, records: Sequence[Any], i: int, j: int) -> Task:
        return Task(
            TaskType.SINGLE_CHOICE,
            question=(
                f"Do these refer to the same entity? "
                f"A: {self.key(records[i])} | B: {self.key(records[j])}"
            ),
            options=(YES, NO),
            payload={"left_index": i, "right_index": j},
            truth=YES if self.truth_fn(records[i], records[j]) else NO,
        )

    def _verify_batch(
        self, records: Sequence[Any], pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Buy *redundancy* votes on each pair as one batch and aggregate."""
        tasks = [self._pair_task(records, i, j) for i, j in pairs]
        collected = self.platform.collect_batch(tasks, redundancy=self.redundancy)
        verdicts: list[bool] = []
        for task in tasks:
            answers = collected.get(task.task_id, [])
            if not answers:
                # Skip/degrade failure policy: no evidence — conservatively
                # treat the pair as a non-match rather than crashing.
                verdicts.append(False)
                continue
            result = self.inference.infer({task.task_id: answers})
            verdicts.append(result.truths[task.task_id] == YES)
        return verdicts

    # ------------------------------------------------------------------ #

    def run(self, records: Sequence[Any]) -> JoinResult:
        """Resolve *records*; returns matches, clusters, and accounting."""
        with operator_span(
            self.platform,
            "join",
            records=len(records),
            pruned=self.pruner is not None,
            transitivity=self.use_transitivity,
        ) as span:
            result = self._resolve(records)
            span.set_tag("questions", result.questions_asked)
            span.set_tag("matched", len(result.matched_pairs))
            span.set_tag("deduced", result.deduced_pairs)
            return result

    def _resolve(self, records: Sequence[Any]) -> JoinResult:
        before_cost = self.platform.stats.cost_spent
        before_answers = self.platform.stats.answers_collected
        pairs, report = self._candidate_pairs(records)

        resolver = TransitiveResolver(strict=False)
        matched: set[tuple[int, int]] = set()
        questions = 0
        deduced = 0
        # Pairs go to the crowd in chunks (descending similarity when
        # pruned). Sequentially the chunk is a single pair, so every verdict
        # can deduce the next; under a parallel runtime a whole batch is
        # posted at once — deduction then only sees verdicts from earlier
        # chunks, trading a few extra questions for round-parallelism.
        chunk_size = (
            self.platform.scheduler.config.batch_size
            if self.platform.parallel_batching
            else 1
        )
        for start in range(0, len(pairs), chunk_size):
            chunk = pairs[start : start + chunk_size]
            unresolved: list[tuple[int, int]] = []
            for pair in chunk:
                i, j = pair.left_index, pair.right_index
                verdict: bool | None = None
                if self.use_transitivity:
                    verdict = resolver.infer(i, j)
                if verdict is None:
                    unresolved.append((i, j))
                else:
                    deduced += 1
                    if verdict:
                        matched.add((min(i, j), max(i, j)))
            if not unresolved:
                continue
            verdicts = self._verify_batch(records, unresolved)
            questions += len(unresolved)
            for (i, j), verdict in zip(unresolved, verdicts):
                if verdict:
                    resolver.record_match(i, j)
                    matched.add((min(i, j), max(i, j)))
                else:
                    resolver.record_nonmatch(i, j)

        # Matches imply clusters; transitive closure over matched pairs.
        closure = TransitiveResolver(strict=False)
        for i, j in matched:
            closure.record_match(i, j)
        clusters = closure.clusters(range(len(records)))
        # Closure may imply matches for pruned-away pairs; include them so
        # cluster semantics and pair semantics agree.
        for cluster in clusters:
            ordered = sorted(cluster)
            for x in range(len(ordered)):
                for y in range(x + 1, len(ordered)):
                    matched.add((ordered[x], ordered[y]))

        return JoinResult(
            matched_pairs=matched,
            clusters=clusters,
            pairs_considered=len(pairs),
            questions_asked=questions,
            answers_bought=self.platform.stats.answers_collected - before_answers,
            cost=self.platform.stats.cost_spent - before_cost,
            pruning_report=report,
            deduced_pairs=deduced,
        )


def crossing_join(
    platform: SimulatedPlatform,
    left: Sequence[Any],
    right: Sequence[Any],
    truth_fn: Callable[[Any, Any], bool],
    pruner: SimilarityPruner | None = None,
    redundancy: int = 3,
    inference: TruthInference | None = None,
    key: Callable[[Any], str] = str,
) -> JoinResult:
    """Bipartite crowd join between two relations (CROWDJOIN in CrowdSQL).

    Same machinery as :class:`CrowdJoin` but over left x right pairs; the
    returned indexes are (left_index, len(left) + right_index).
    """
    with operator_span(
        platform, "join", kind="crossing", left=len(left), right=len(right)
    ) as span:
        result = _crossing_join(
            platform, left, right, truth_fn, pruner, redundancy, inference, key
        )
        span.set_tag("questions", result.questions_asked)
        span.set_tag("matched", len(result.matched_pairs))
        return result


def _crossing_join(
    platform: SimulatedPlatform,
    left: Sequence[Any],
    right: Sequence[Any],
    truth_fn: Callable[[Any, Any], bool],
    pruner: SimilarityPruner | None,
    redundancy: int,
    inference: TruthInference | None,
    key: Callable[[Any], str],
) -> JoinResult:
    inference = inference or MajorityVote()
    before_cost = platform.stats.cost_spent
    before_answers = platform.stats.answers_collected
    if pruner is not None:
        pairs, report = pruner.cross_pairs(left, right)
    else:
        pairs = [
            CandidatePair(i, j, 1.0)
            for i in range(len(left))
            for j in range(len(right))
        ]
        report = None
    matched: set[tuple[int, int]] = set()
    questions = 0
    tasks = []
    for pair in pairs:
        a, b = left[pair.left_index], right[pair.right_index]
        tasks.append(
            Task(
                TaskType.SINGLE_CHOICE,
                question=f"Same entity? A: {key(a)} | B: {key(b)}",
                options=(YES, NO),
                truth=YES if truth_fn(a, b) else NO,
            )
        )
    collected = platform.collect_batch(tasks, redundancy=redundancy) if tasks else {}
    for pair, task in zip(pairs, tasks):
        questions += 1
        verdict = inference.infer({task.task_id: collected[task.task_id]})
        if verdict.truths[task.task_id] == YES:
            matched.add((pair.left_index, len(left) + pair.right_index))
    clusters_resolver = TransitiveResolver(strict=False)
    for i, j in matched:
        clusters_resolver.record_match(i, j)
    clusters = clusters_resolver.clusters(range(len(left) + len(right)))
    return JoinResult(
        matched_pairs=matched,
        clusters=clusters,
        pairs_considered=len(pairs),
        questions_asked=questions,
        answers_bought=platform.stats.answers_collected - before_answers,
        cost=platform.stats.cost_spent - before_cost,
        pruning_report=report,
    )
