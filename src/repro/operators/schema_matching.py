"""Crowd-powered schema matching.

Given two relation schemas, find which attributes correspond ("cust_name"
~ "customer"). The hybrid recipe the tutorial surveys:

1. machine similarity over attribute names (plus optional descriptions)
   scores all source x target pairs;
2. obviously-bad pairs are pruned;
3. the crowd verifies the survivors (yes/no tasks with redundancy);
4. a one-to-one assignment is extracted greedily from confirmed pairs,
   best-similarity first.

Ground truth for the simulated workers comes from a caller-provided
correspondence map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.cost.similarity import jaccard_ngrams
from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference

YES = "yes"
NO = "no"


@dataclass
class MatchingResult:
    """Outcome of a crowd schema-matching run."""

    correspondences: dict[str, str]          # source attribute -> target
    questions_asked: int
    pairs_pruned: int
    cost: float
    confirmed_pairs: list[tuple[str, str, float]] = field(default_factory=list)

    def precision_recall_f1(
        self, truth: Mapping[str, str]
    ) -> tuple[float, float, float]:
        """Correspondence-level precision/recall/F1 against ground truth."""
        predicted = set(self.correspondences.items())
        expected = set(truth.items())
        if not predicted and not expected:
            return 1.0, 1.0, 1.0
        tp = len(predicted & expected)
        precision = tp / len(predicted) if predicted else 0.0
        recall = tp / len(expected) if expected else 1.0
        if precision + recall == 0:
            return precision, recall, 0.0
        return precision, recall, 2 * precision * recall / (precision + recall)


class CrowdSchemaMatcher:
    """Hybrid machine/crowd attribute matcher.

    Args:
        platform: Marketplace.
        truth: Ground-truth correspondences (source -> target) driving the
            simulated workers; never read by the matching logic.
        similarity: Name-similarity function (default character-3-gram
            Jaccard, which survives abbreviation).
        prune_below: Pairs under this similarity skip crowd verification.
        redundancy: Votes per verified pair.
        inference: Vote aggregation.
        descriptions: Optional attribute -> description text, appended to
            names before similarity scoring and shown in task prompts.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        truth: Mapping[str, str],
        similarity: Callable[[str, str], float] = jaccard_ngrams,
        prune_below: float = 0.15,
        redundancy: int = 3,
        inference: TruthInference | None = None,
        descriptions: Mapping[str, str] | None = None,
    ):
        if not 0.0 <= prune_below <= 1.0:
            raise ConfigurationError("prune_below must be in [0, 1]")
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        self.platform = platform
        self.truth = dict(truth)
        self.similarity = similarity
        self.prune_below = prune_below
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.descriptions = dict(descriptions or {})

    def _text(self, attribute: str) -> str:
        description = self.descriptions.get(attribute, "")
        return f"{attribute} {description}".strip()

    def run(
        self,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
    ) -> MatchingResult:
        """Match source attributes to target attributes (1:1)."""
        if not source_attributes or not target_attributes:
            raise ConfigurationError("both schemas need attributes")
        before = self.platform.stats.cost_spent

        scored = []
        pruned = 0
        for source in source_attributes:
            for target in target_attributes:
                score = self.similarity(self._text(source), self._text(target))
                if score < self.prune_below:
                    pruned += 1
                else:
                    scored.append((score, source, target))
        scored.sort(reverse=True)

        confirmed: list[tuple[str, str, float]] = []
        questions = 0
        for score, source, target in scored:
            task = Task(
                TaskType.SINGLE_CHOICE,
                question=(
                    f"Do these columns mean the same thing? "
                    f"A: {self._text(source)} | B: {self._text(target)}"
                ),
                options=(YES, NO),
                truth=YES if self.truth.get(source) == target else NO,
            )
            collected = self.platform.collect([task], redundancy=self.redundancy)
            questions += 1
            if self.inference.infer(collected).truths[task.task_id] == YES:
                confirmed.append((source, target, score))

        # Greedy 1:1 extraction, best machine similarity first.
        correspondences: dict[str, str] = {}
        used_targets: set[str] = set()
        for source, target, _score in sorted(confirmed, key=lambda t: -t[2]):
            if source in correspondences or target in used_targets:
                continue
            correspondences[source] = target
            used_targets.add(target)

        return MatchingResult(
            correspondences=correspondences,
            questions_asked=questions,
            pairs_pruned=pruned,
            cost=self.platform.stats.cost_spent - before,
            confirmed_pairs=confirmed,
        )
