"""Domain-aware online assignment (exploiting diverse worker skills).

When workers have per-domain skills (:class:`~repro.workers.models.
DiverseSkillsModel`) and tasks advertise a ``payload['domain']``, routing
each arriving worker to the domain they are measurably best at beats
domain-blind assignment. Quality per (worker, domain) is estimated online
from agreement with the running posterior mode, Beta-smoothed toward a
prior — the same machinery QASCA uses, bucketed by domain.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import AssignmentError
from repro.platform.task import Answer, Task
from repro.quality.assignment.baseline import FixedRedundancy
from repro.workers.worker import Worker


class DomainAwareAssignment(FixedRedundancy):
    """Fixed-redundancy assignment that routes workers to their best domain.

    Args:
        redundancy: Answers per task.
        prior_quality: Initial per-(worker, domain) accuracy estimate.
        exploration: Minimum observations per (worker, domain) before the
            estimate is trusted over the prior (cold domains get explored
            round-robin).
    """

    name = "domain_aware"

    def __init__(
        self,
        redundancy: int = 3,
        prior_quality: float = 0.6,
        exploration: int = 2,
    ):
        super().__init__(redundancy)
        if not 0.0 < prior_quality < 1.0:
            raise AssignmentError("prior_quality must be in (0, 1)")
        self.prior_quality = prior_quality
        self.exploration = exploration
        self._stats: dict[tuple[str, str], tuple[float, float]] = {}  # hits, total
        self._task_answers: dict[str, list[Answer]] = {}

    def begin(self, tasks: Sequence[Task]) -> None:
        self._stats = {}
        self._task_answers = {}

    def _domain(self, task: Task) -> str:
        return str(task.payload.get("domain", "_default"))

    def quality(self, worker_id: str, domain: str) -> float:
        """Beta-smoothed skill estimate for (worker, domain)."""
        hits, total = self._stats.get((worker_id, domain), (0.0, 0.0))
        return (hits + 4.0 * self.prior_quality) / (total + 4.0)

    def observations(self, worker_id: str, domain: str) -> float:
        """Pairwise-agreement observations recorded for (worker, domain)."""
        return self._stats.get((worker_id, domain), (0.0, 0.0))[1]

    def assign(
        self,
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> Task | None:
        candidates = [
            t for t in self._unanswered_by(worker, tasks, answers_by_task)
            if self._needs_more(t, answers_by_task)
        ]
        if not candidates:
            return None
        # Explore domains this worker has few observations in.
        cold = [
            t for t in candidates
            if self.observations(worker.worker_id, self._domain(t)) < self.exploration
        ]
        pool = cold or candidates
        # Among the pool, pick the task in the worker's best domain,
        # breaking ties toward the task with the fewest answers.
        return min(
            pool,
            key=lambda t: (
                -self.quality(worker.worker_id, self._domain(t)),
                len(answers_by_task.get(t.task_id, ())),
            ),
        )

    def observe(self, task: Task, answer: Answer) -> None:
        # Pairwise-agreement credit: each pair of answers on a task is one
        # (dis)agreement signal for both workers. Two workers of accuracy p
        # agree with probability p^2 + (1-p)^2/(k-1), a monotone function of
        # p — and unlike "agree with the running mode" it cannot lock onto
        # a wrong early answer.
        domain = self._domain(task)
        previous = self._task_answers.setdefault(task.task_id, [])
        for earlier in previous:
            agreed = 1.0 if earlier.value == answer.value else 0.0
            for worker_id in (answer.worker_id, earlier.worker_id):
                hits, total = self._stats.get((worker_id, domain), (0.0, 0.0))
                self._stats[(worker_id, domain)] = (hits + agreed, total + 1.0)
        previous.append(answer)
