"""CDAS-style confidence-based early termination.

CDAS's insight: most tasks are easy, so stop collecting answers for a task
as soon as the evidence is statistically decisive, and spend the saved
budget elsewhere (or not at all). This strategy assigns round-robin (evenest
coverage) but terminates a task once the one-coin posterior of its leading
label crosses ``confidence``; a per-task cap bounds the hard cases.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import AssignmentError
from repro.platform.task import Answer, Task
from repro.quality.assignment.base import AssignmentStrategy
from repro.workers.worker import Worker


class Cdas(AssignmentStrategy):
    """Early-terminating round-robin assignment.

    Args:
        confidence: Posterior threshold at which a task is settled.
        min_answers: Answers required before termination may trigger.
        max_answers_per_task: Cap for stubborn/ambiguous tasks.
        assumed_accuracy: Worker accuracy used in the posterior update
            (CDAS assumes a pool-level accuracy rather than per-worker).
    """

    name = "cdas"

    def __init__(
        self,
        confidence: float = 0.9,
        min_answers: int = 2,
        max_answers_per_task: int = 9,
        assumed_accuracy: float = 0.75,
    ):
        if not 0.5 < confidence <= 1.0:
            raise AssignmentError("confidence must be in (0.5, 1]")
        if not 0.5 < assumed_accuracy < 1.0:
            raise AssignmentError("assumed_accuracy must be in (0.5, 1)")
        if min_answers < 1 or max_answers_per_task < min_answers:
            raise AssignmentError("need 1 <= min_answers <= max_answers_per_task")
        self.confidence = confidence
        self.min_answers = min_answers
        self.max_answers_per_task = max_answers_per_task
        self.assumed_accuracy = assumed_accuracy
        self._posteriors: dict[str, dict[Any, float]] = {}
        self._options: dict[str, tuple[Any, ...]] = {}
        self._terminated: set[str] = set()
        self._answer_counts: dict[str, int] = {}

    def begin(self, tasks: Sequence[Task]) -> None:
        self._posteriors = {}
        self._options = {}
        self._terminated = set()
        self._answer_counts = {}
        for task in tasks:
            options = task.options or ("yes", "no")
            self._options[task.task_id] = options
            uniform = 1.0 / len(options)
            self._posteriors[task.task_id] = {o: uniform for o in options}

    def _needs_more(
        self, task: Task, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> bool:
        if task.task_id in self._terminated:
            return False
        return len(answers_by_task.get(task.task_id, ())) < self.max_answers_per_task

    def assign(
        self,
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> Task | None:
        candidates = [
            t for t in self._unanswered_by(worker, tasks, answers_by_task)
            if self._needs_more(t, answers_by_task)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda t: len(answers_by_task.get(t.task_id, ())))

    def observe(self, task: Task, answer: Answer) -> None:
        options = self._options[task.task_id]
        k = max(2, len(options))
        p = self.assumed_accuracy
        post = self._posteriors[task.task_id]
        updated = {
            label: post[label] * (p if label == answer.value else (1.0 - p) / (k - 1))
            for label in options
        }
        total = sum(updated.values())
        if total > 0:
            self._posteriors[task.task_id] = {
                label: v / total for label, v in updated.items()
            }
        self._answer_counts[task.task_id] = self._answer_counts.get(task.task_id, 0) + 1
        self.note_answer_count(task.task_id, self._answer_counts[task.task_id])

    def note_answer_count(self, task_id: str, count: int) -> None:
        """Check the termination rule after *count* answers."""
        if count >= self.min_answers and max(self._posteriors[task_id].values()) >= self.confidence:
            self._terminated.add(task_id)

    def is_finished(
        self,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> bool:
        return all(
            not self._needs_more(task, answers_by_task)
            for task in tasks
            if task.is_open
        )

    def inferred_truths(self) -> dict[str, Any]:
        """Posterior-mode label per task (CDAS's final answers)."""
        return {
            task_id: max(post, key=lambda label: (post[label], repr(label)))
            for task_id, post in self._posteriors.items()
        }

    def confidences(self) -> dict[str, float]:
        """Max posterior per task."""
        return {task_id: max(post.values()) for task_id, post in self._posteriors.items()}

    @property
    def terminated_tasks(self) -> set[str]:
        return set(self._terminated)
