"""Online task assignment strategies."""

from repro.quality.assignment.base import (
    AssignmentOutcome,
    AssignmentStrategy,
    run_assignment,
)
from repro.quality.assignment.baseline import RandomAssignment, RoundRobinAssignment
from repro.quality.assignment.cdas import Cdas
from repro.quality.assignment.domain import DomainAwareAssignment
from repro.quality.assignment.qasca import Qasca

__all__ = [
    "AssignmentOutcome",
    "AssignmentStrategy",
    "Cdas",
    "DomainAwareAssignment",
    "Qasca",
    "RandomAssignment",
    "RoundRobinAssignment",
    "run_assignment",
]
