"""Online task assignment: the driver loop and strategy interface.

In the online regime a worker "arrives" and the requester must decide, on
the spot, which task to give them (task-based assignment in the tutorial's
taxonomy). A strategy sees the arriving worker, the evidence gathered so
far, and its own quality estimates; it returns a task or ``None`` for
"nothing useful for this worker".

:func:`run_assignment` is the shared driver: it pulls workers from the
platform's arrival stream, lets the strategy assign, collects the answer,
and stops when the strategy declares completion or the answer budget is
exhausted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import AssignmentError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, Task
from repro.workers.worker import Worker


@dataclass
class AssignmentOutcome:
    """Result of an online assignment run."""

    answers_by_task: dict[str, list[Answer]]
    answers_used: int
    cost: float
    stopped_reason: str
    assignments_by_worker: dict[str, int] = field(default_factory=dict)


class AssignmentStrategy:
    """Base class for online assignment strategies."""

    name = "base"

    def begin(self, tasks: Sequence[Task]) -> None:
        """Reset internal state for a new run over *tasks*."""

    def assign(
        self,
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> Task | None:
        """Choose a task for the arriving worker (None = skip this worker)."""
        raise NotImplementedError

    def observe(self, task: Task, answer: Answer) -> None:
        """Hook called after each collected answer (update posteriors)."""

    def is_finished(
        self,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> bool:
        """True when the strategy considers the job complete."""
        raise NotImplementedError

    @staticmethod
    def _unanswered_by(
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> list[Task]:
        """Open tasks this worker has not answered yet."""
        eligible = []
        for task in tasks:
            if not task.is_open:
                continue
            answered = {a.worker_id for a in answers_by_task.get(task.task_id, ())}
            if worker.worker_id not in answered:
                eligible.append(task)
        return eligible


def run_assignment(
    platform: SimulatedPlatform,
    strategy: AssignmentStrategy,
    tasks: Sequence[Task],
    max_answers: int,
    max_skips: int | None = None,
) -> AssignmentOutcome:
    """Drive *strategy* over the platform's worker arrival stream.

    Args:
        platform: The (simulated) marketplace; supplies workers and answers.
        strategy: The assignment policy.
        tasks: Tasks to complete.
        max_answers: Hard budget on total answers collected.
        max_skips: Consecutive worker skips before aborting (defaults to
            4x the pool size — a safety net against livelock when every
            remaining worker has already answered every open task).

    Returns:
        AssignmentOutcome with the full evidence set.
    """
    if max_answers < 1:
        raise AssignmentError("max_answers must be >= 1")
    if max_skips is None:
        max_skips = 4 * len(platform.pool)
    platform.publish([t for t in tasks if t.task_id not in platform._tasks])
    strategy.begin(tasks)

    answers_by_task: dict[str, list[Answer]] = defaultdict(list)
    per_worker: dict[str, int] = defaultdict(int)
    used = 0
    cost = 0.0
    skips = 0
    reason = "budget_exhausted"

    stream = platform.worker_stream()
    while used < max_answers:
        if strategy.is_finished(tasks, answers_by_task):
            reason = "strategy_complete"
            break
        worker = next(stream)
        task = strategy.assign(worker, tasks, answers_by_task)
        if task is None:
            skips += 1
            if skips >= max_skips:
                reason = "no_assignable_work"
                break
            continue
        skips = 0
        answer = platform.ask(task, worker)
        answers_by_task[task.task_id].append(answer)
        per_worker[worker.worker_id] += 1
        used += 1
        cost += answer.reward_paid
        strategy.observe(task, answer)
    else:
        if strategy.is_finished(tasks, answers_by_task):
            reason = "strategy_complete"

    return AssignmentOutcome(
        answers_by_task=dict(answers_by_task),
        answers_used=used,
        cost=cost,
        stopped_reason=reason,
        assignments_by_worker=dict(per_worker),
    )
