"""Baseline assignment strategies: fixed-redundancy random and round-robin.

These are the offline-equivalent policies real platforms default to: every
task receives exactly *redundancy* answers regardless of how decisive the
evidence already is. They are the yardstick QASCA/CDAS are measured against.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import AssignmentError
from repro.platform.task import Answer, Task
from repro.quality.assignment.base import AssignmentStrategy
from repro.workers.worker import Worker


class FixedRedundancy(AssignmentStrategy):
    """Shared machinery: complete when every task has *redundancy* answers."""

    def __init__(self, redundancy: int = 3):
        if redundancy < 1:
            raise AssignmentError("redundancy must be >= 1")
        self.redundancy = redundancy

    def _needs_more(
        self, task: Task, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> bool:
        return len(answers_by_task.get(task.task_id, ())) < self.redundancy

    def is_finished(
        self,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> bool:
        return all(not self._needs_more(t, answers_by_task) for t in tasks if t.is_open)


class RandomAssignment(FixedRedundancy):
    """Give the arriving worker a uniformly random task still needing answers."""

    name = "random"

    def __init__(self, redundancy: int = 3, seed: int | None = None):
        super().__init__(redundancy)
        self.rng = np.random.default_rng(seed)

    def assign(
        self,
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> Task | None:
        candidates = [
            t for t in self._unanswered_by(worker, tasks, answers_by_task)
            if self._needs_more(t, answers_by_task)
        ]
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]


class RoundRobinAssignment(FixedRedundancy):
    """Give the arriving worker the eligible task with the fewest answers.

    Breaks ties by task publication order, producing the evenest possible
    spread of redundancy across tasks.
    """

    name = "round_robin"

    def assign(
        self,
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> Task | None:
        candidates = [
            t for t in self._unanswered_by(worker, tasks, answers_by_task)
            if self._needs_more(t, answers_by_task)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda t: len(answers_by_task.get(t.task_id, ())))
