"""QASCA-style quality-aware online task assignment.

When worker *w* arrives, QASCA asks: *which task's expected quality improves
most if w answers it?* It maintains, per task, a posterior over candidate
labels (one-coin likelihoods with online worker-quality estimates), and
scores each candidate task by the expected max-posterior after receiving
w's answer, where the answer is marginalized over the posterior predictive:

    gain(t, w) = E_{answer ~ predictive} [ max_l P(l | evidence + answer) ]
                 - max_l P(l | evidence)

The arriving worker is assigned the argmax-gain task. Worker quality
estimates start at a prior and are updated from agreement with the current
posterior mode after every observation — the online analogue of the EM
loop in :mod:`repro.quality.truth.zencrowd`.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import AssignmentError
from repro.platform.task import Answer, Task
from repro.quality.assignment.base import AssignmentStrategy
from repro.workers.worker import Worker


class Qasca(AssignmentStrategy):
    """Quality-aware sequential crowdsourced assignment.

    Args:
        redundancy_cap: Per-task answer cap (keeps budgets comparable with
            the fixed-redundancy baselines).
        confidence_target: Tasks whose max posterior reaches this value are
            considered settled and receive no further assignments.
        prior_quality: Initial worker accuracy estimate.
    """

    name = "qasca"

    def __init__(
        self,
        redundancy_cap: int = 7,
        confidence_target: float = 0.95,
        prior_quality: float = 0.7,
    ):
        if not 0.5 < confidence_target <= 1.0:
            raise AssignmentError("confidence_target must be in (0.5, 1]")
        self.redundancy_cap = redundancy_cap
        self.confidence_target = confidence_target
        self.prior_quality = prior_quality
        self._posteriors: dict[str, dict[Any, float]] = {}
        self._options: dict[str, tuple[Any, ...]] = {}
        self._quality: dict[str, tuple[float, float]] = {}  # worker -> (hits, total)

    # ------------------------------------------------------------------ #
    # Posterior machinery
    # ------------------------------------------------------------------ #

    def begin(self, tasks: Sequence[Task]) -> None:
        self._posteriors = {}
        self._options = {}
        for task in tasks:
            options = task.options or ("yes", "no")
            self._options[task.task_id] = options
            uniform = 1.0 / len(options)
            self._posteriors[task.task_id] = {o: uniform for o in options}
        self._quality = {}

    def worker_quality(self, worker_id: str) -> float:
        """Beta-smoothed online accuracy estimate for a worker."""
        hits, total = self._quality.get(worker_id, (0.0, 0.0))
        # Beta-smoothed toward the prior.
        return (hits + 4.0 * self.prior_quality) / (total + 4.0)

    def _updated(self, task_id: str, value: Any, p: float) -> dict[Any, float]:
        """Posterior after observing *value* from a worker of quality p."""
        options = self._options[task_id]
        k = max(2, len(options))
        post = self._posteriors[task_id]
        updated: dict[Any, float] = {}
        for label in options:
            like = p if label == value else (1.0 - p) / (k - 1)
            updated[label] = post[label] * like
        total = sum(updated.values())
        if total <= 0:
            return dict(post)
        return {label: v / total for label, v in updated.items()}

    def _expected_gain(self, task_id: str, p: float) -> float:
        """Expected improvement in max-posterior if this worker answers."""
        options = self._options[task_id]
        k = max(2, len(options))
        post = self._posteriors[task_id]
        current_best = max(post.values())
        gain = 0.0
        for value in options:
            # Posterior predictive of seeing this answer.
            predictive = sum(
                post[label] * (p if label == value else (1.0 - p) / (k - 1))
                for label in options
            )
            if predictive <= 0:
                continue
            updated = self._updated(task_id, value, p)
            gain += predictive * max(updated.values())
        return gain - current_best

    # ------------------------------------------------------------------ #
    # Strategy interface
    # ------------------------------------------------------------------ #

    def _settled(self, task_id: str) -> bool:
        return max(self._posteriors[task_id].values()) >= self.confidence_target

    def assign(
        self,
        worker: Worker,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> Task | None:
        p = min(0.99, max(0.01, self.worker_quality(worker.worker_id)))
        best_task: Task | None = None
        best_gain = 0.0
        for task in self._unanswered_by(worker, tasks, answers_by_task):
            if self._settled(task.task_id):
                continue
            if len(answers_by_task.get(task.task_id, ())) >= self.redundancy_cap:
                continue
            gain = self._expected_gain(task.task_id, p)
            if gain > best_gain:
                best_gain = gain
                best_task = task
        return best_task

    def observe(self, task: Task, answer: Answer) -> None:
        p = min(0.99, max(0.01, self.worker_quality(answer.worker_id)))
        self._posteriors[task.task_id] = self._updated(task.task_id, answer.value, p)
        # Credit the worker by agreement with the updated posterior mode.
        post = self._posteriors[task.task_id]
        mode = max(post, key=lambda label: (post[label], repr(label)))
        hits, total = self._quality.get(answer.worker_id, (0.0, 0.0))
        self._quality[answer.worker_id] = (
            hits + (1.0 if answer.value == mode else 0.0),
            total + 1.0,
        )

    def is_finished(
        self,
        tasks: Sequence[Task],
        answers_by_task: Mapping[str, Sequence[Answer]],
    ) -> bool:
        for task in tasks:
            if not task.is_open:
                continue
            if self._settled(task.task_id):
                continue
            if len(answers_by_task.get(task.task_id, ())) < self.redundancy_cap:
                return False
        return True

    def inferred_truths(self) -> dict[str, Any]:
        """Posterior-mode labels (QASCA's own final answer per task)."""
        return {
            task_id: max(post, key=lambda label: (post[label], repr(label)))
            for task_id, post in self._posteriors.items()
        }

    def confidences(self) -> dict[str, float]:
        """Max posterior per task."""
        return {task_id: max(post.values()) for task_id, post in self._posteriors.items()}
