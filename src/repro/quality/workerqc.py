"""Worker quality control: qualification tests, gold injection, elimination.

The worker-based side of the tutorial's quality-control taxonomy:

* :func:`qualification_test` — a pre-screen on tasks with known answers;
  workers below the pass bar never enter the real job.
* :class:`GoldInjector` — mixes hidden gold tasks into a task list so worker
  accuracy can be measured *during* the job without workers knowing which
  tasks are tests.
* :func:`eliminate_spammers` — drops workers whose measured gold accuracy
  is statistically indistinguishable from (or worse than) random guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, Task
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker


def qualification_test(
    platform: SimulatedPlatform,
    gold_tasks: Sequence[Task],
    pass_accuracy: float = 0.7,
    deactivate_failures: bool = True,
) -> dict[str, float]:
    """Run every active worker through *gold_tasks*; return measured accuracy.

    Workers scoring below *pass_accuracy* are deactivated in the pool when
    *deactivate_failures* is set. Gold tasks must carry ``truth``.
    """
    if not gold_tasks:
        raise ConfigurationError("qualification test requires at least one gold task")
    for task in gold_tasks:
        if task.truth is None:
            raise ConfigurationError(f"gold task {task.task_id} has no ground truth")
    scores: dict[str, float] = {}
    for worker in list(platform.pool.active_workers):
        hits = 0
        for task in gold_tasks:
            value = worker.answer_value(task, platform.rng)
            if value == task.truth:
                hits += 1
        accuracy = hits / len(gold_tasks)
        scores[worker.worker_id] = accuracy
        if deactivate_failures and accuracy < pass_accuracy:
            platform.pool.deactivate(worker.worker_id)
    return scores


@dataclass
class GoldInjector:
    """Interleave hidden gold tasks into a job and score workers from them.

    Args:
        gold_tasks: Tasks with known truth; they are marked ``is_gold``.
        injection_rate: Fraction of assignments that should be gold
            (e.g. 0.1 = one gold per ten real tasks).
        seed: RNG seed for the interleaving.
    """

    gold_tasks: Sequence[Task]
    injection_rate: float = 0.1
    seed: int | None = None
    _scores: dict[str, list[int]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not self.gold_tasks:
            raise ConfigurationError("GoldInjector requires gold tasks")
        if not 0.0 < self.injection_rate < 1.0:
            raise ConfigurationError("injection_rate must be in (0, 1)")
        for task in self.gold_tasks:
            if task.truth is None:
                raise ConfigurationError(f"gold task {task.task_id} has no truth")
            task.is_gold = True

    def inject(self, tasks: Sequence[Task]) -> list[Task]:
        """Return a shuffled task list with gold tasks mixed in proportionally."""
        rng = np.random.default_rng(self.seed)
        n_gold = max(1, int(round(len(tasks) * self.injection_rate)))
        chosen = [
            self.gold_tasks[int(i)]
            for i in rng.integers(len(self.gold_tasks), size=n_gold)
        ]
        mixed = list(tasks) + chosen
        rng.shuffle(mixed)
        return mixed

    def score(self, answers: Sequence[Answer], tasks_by_id: Mapping[str, Task]) -> None:
        """Record gold hits/misses from a batch of answers."""
        for answer in answers:
            task = tasks_by_id.get(answer.task_id)
            if task is None or not task.is_gold:
                continue
            self._scores.setdefault(answer.worker_id, []).append(
                1 if answer.value == task.truth else 0
            )

    def worker_accuracy(self) -> dict[str, float]:
        """Measured gold accuracy per worker (workers with >= 1 gold answer)."""
        return {w: sum(v) / len(v) for w, v in self._scores.items() if v}

    def gold_counts(self) -> dict[str, int]:
        """Number of gold answers scored per worker."""
        return {w: len(v) for w, v in self._scores.items()}


def eliminate_spammers(
    pool: WorkerPool,
    gold_accuracy: Mapping[str, float],
    gold_counts: Mapping[str, int],
    chance_level: float = 0.5,
    significance: float = 2.0,
    min_observations: int = 3,
) -> list[str]:
    """Deactivate workers whose gold accuracy is not above chance.

    A worker is eliminated when their measured accuracy minus *significance*
    standard errors is still at or below *chance_level* AND their point
    estimate is below chance + one standard error — i.e. the evidence is
    consistent with guessing. Returns the eliminated worker ids.
    """
    eliminated = []
    for worker_id, accuracy in gold_accuracy.items():
        n = gold_counts.get(worker_id, 0)
        if n < min_observations:
            continue
        stderr = math.sqrt(max(accuracy * (1 - accuracy), 0.01) / n)
        if accuracy <= chance_level + stderr and accuracy - significance * stderr <= chance_level:
            if worker_id in pool:
                pool.deactivate(worker_id)
                eliminated.append(worker_id)
    return eliminated


def pool_accuracy_report(
    pool: WorkerPool,
    gold_accuracy: Mapping[str, float],
) -> dict[str, dict[str, float | bool]]:
    """Join measured accuracies with activity state, for requester dashboards."""
    report: dict[str, dict[str, float | bool]] = {}
    for worker in pool:
        entry: dict[str, float | bool] = {"active": worker.active}
        if worker.worker_id in gold_accuracy:
            entry["gold_accuracy"] = gold_accuracy[worker.worker_id]
        report[worker.worker_id] = entry
    return report
