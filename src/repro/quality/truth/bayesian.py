"""Bayesian voting with Beta priors on worker accuracy.

A lightweight Bayesian treatment of the one-coin model (the tutorial's
"direct computation with priors" family, in the spirit of BCC/CATD's
confidence-aware weighting): worker accuracies carry a Beta(a, b) prior,
posterior accuracy means weight each worker's vote in log-odds space, and
a small number of hard-EM rounds alternate truth assignment with posterior
updates. Because weights are log-odds of the posterior *mean*, workers
with little evidence stay near the prior instead of being over-trusted —
the property that distinguishes this method from plain weighted MV.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import InferenceResult, TruthInference, votes_by_task


class BayesianVote(TruthInference):
    """Iterated Bayesian log-odds voting.

    Args:
        prior_alpha / prior_beta: Beta prior pseudo-counts (successes /
            failures). The default Beta(4, 1) encodes "workers are usually
            right" — the assumption behind redundancy-based crowdsourcing.
        rounds: Hard-EM rounds (truth assignment <-> accuracy posterior).
    """

    name = "bayes"

    def __init__(self, prior_alpha: float = 4.0, prior_beta: float = 1.0, rounds: int = 5):
        if prior_alpha <= 0 or prior_beta <= 0:
            raise InferenceError("Beta prior parameters must be positive")
        if rounds < 1:
            raise InferenceError("rounds must be >= 1")
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta
        self.rounds = rounds

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        candidates = {
            task_id: sorted(counts, key=repr)
            for task_id, counts in votes_by_task(answers_by_task).items()
        }
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        # Posterior pseudo-counts per worker.
        alpha = {w: self.prior_alpha for w in worker_ids}
        beta = {w: self.prior_beta for w in worker_ids}

        truths: dict[str, Any] = {}
        posteriors: dict[str, dict[Any, float]] = {}
        for _ in range(self.rounds):
            # Truth assignment by log-odds-weighted voting.
            posteriors = {}
            for task_id, answers in answers_by_task.items():
                labels = candidates[task_id]
                k = max(2, len(labels))
                scores: dict[Any, float] = {}
                for label in labels:
                    log_like = 0.0
                    for a in answers:
                        p = alpha[a.worker_id] / (alpha[a.worker_id] + beta[a.worker_id])
                        p = min(0.999, max(0.001, p))
                        if a.value == label:
                            log_like += math.log(p)
                        else:
                            log_like += math.log((1.0 - p) / (k - 1))
                    scores[label] = log_like
                peak = max(scores.values())
                weights = {label: math.exp(s - peak) for label, s in scores.items()}
                total = sum(weights.values())
                posteriors[task_id] = {label: v / total for label, v in weights.items()}
                truths[task_id] = max(
                    labels, key=lambda label: (posteriors[task_id][label], repr(label))
                )

            # Accuracy posterior update from assigned truths (soft counts).
            alpha = {w: self.prior_alpha for w in worker_ids}
            beta = {w: self.prior_beta for w in worker_ids}
            for task_id, answers in answers_by_task.items():
                post = posteriors[task_id]
                for a in answers:
                    p_correct = post.get(a.value, 0.0)
                    alpha[a.worker_id] += p_correct
                    beta[a.worker_id] += 1.0 - p_correct

        confidences = {t: max(post.values()) for t, post in posteriors.items()}
        worker_quality = {
            w: alpha[w] / (alpha[w] + beta[w]) for w in worker_ids
        }
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            iterations=self.rounds,
            converged=True,
            posteriors=posteriors,
        )
