"""Truth-inference interface and shared utilities.

Every algorithm consumes the same evidence — a mapping from task id to the
list of :class:`~repro.platform.task.Answer` objects gathered for it — and
produces an :class:`InferenceResult`: the inferred truth per task, a
confidence per task, and an estimated quality per worker. Ground truth is
never consulted.

The algorithms cover the design space the SIGMOD'17 tutorial lays out:

======================  ==========================  =====================
Algorithm               Worker model                Technique
======================  ==========================  =====================
MajorityVote            none                        direct aggregation
WeightedMajorityVote    worker probability          weighted aggregation
ZenCrowd                worker probability          EM
DawidSkene              confusion matrix            EM
Glad                    ability x difficulty        EM / gradient ascent
BayesianVote            worker probability + prior  iterated posterior
MeanAggregator etc.     numeric noise               robust statistics
======================  ==========================  =====================
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import InferenceError
from repro.obs.runtime import current_metrics, current_tracer
from repro.platform.task import Answer, Task

#: EM execution backends. ``kernel`` is the batched numpy implementation
#: with all likelihood accumulation in log space; ``legacy`` is the original
#: per-answer Python loop, kept as executable documentation of the model
#: math and as the reference side of the differential-equivalence harness
#: (``tests/test_truth_kernels.py``).
EM_BACKENDS = ("kernel", "legacy")


def resolve_backend(backend: str) -> str:
    """Validate an EM backend name (see :data:`EM_BACKENDS`)."""
    if backend not in EM_BACKENDS:
        raise InferenceError(
            f"unknown EM backend {backend!r}; expected one of {EM_BACKENDS}"
        )
    return backend


@dataclass
class InferenceResult:
    """Output of a truth-inference run.

    Attributes:
        truths: task id -> inferred value.
        confidences: task id -> posterior probability (or analogous score in
            [0, 1]) of the inferred value.
        worker_quality: worker id -> estimated accuracy in [0, 1]. For
            confusion-matrix methods this is the mean diagonal.
        iterations: EM / fixed-point iterations executed (0 for one-shot).
        converged: whether iteration stopped by tolerance rather than cap.
        posteriors: task id -> {label: probability} when available.
        task_difficulty: task id -> estimated difficulty in [0, 1]; filled
            by methods that model it (GLAD), empty otherwise.
        spam_distributions: worker id -> {label: probability} spamming
            preferences; filled by methods that model them (MACE), empty
            otherwise.
    """

    truths: dict[str, Any]
    confidences: dict[str, float] = field(default_factory=dict)
    worker_quality: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    posteriors: dict[str, dict[Any, float]] = field(default_factory=dict)
    task_difficulty: dict[str, float] = field(default_factory=dict)
    spam_distributions: dict[str, dict[Any, float]] = field(default_factory=dict)

    def accuracy_against(self, truth_by_task: Mapping[str, Any]) -> float:
        """Fraction of tasks whose inferred value matches *truth_by_task*.

        Only tasks present in both mappings are scored; empty overlap
        raises, because silently returning 0 or 1 hides harness bugs.
        """
        common = [t for t in self.truths if t in truth_by_task]
        if not common:
            raise InferenceError("no overlapping tasks to score accuracy on")
        hits = sum(1 for t in common if self.truths[t] == truth_by_task[t])
        return hits / len(common)


class TruthInference:
    """Base class for truth-inference algorithms."""

    name = "base"

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        """Infer truths from the evidence. Subclasses must override."""
        raise NotImplementedError

    def export_state(self) -> dict[str, Any]:
        """JSON-serializable warm-start state for checkpointing.

        Stateless methods (majority voting and friends) return ``{}``. EM
        methods export their estimated worker parameters so a resumed
        session can re-converge from where it left off instead of from the
        cold prior.
        """
        return {}

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Seed the next :meth:`infer` from previously exported state.

        A no-op by default; EM subclasses override. Warm starting changes
        initialization only — the fixed point is the same, iteration counts
        may differ — so bit-identity harnesses leave it off.
        """

    @staticmethod
    def _validate(answers_by_task: Mapping[str, Sequence[Answer]]) -> None:
        if not answers_by_task:
            raise InferenceError("no answers supplied")
        for task_id, answers in answers_by_task.items():
            if not answers:
                raise InferenceError(f"task {task_id!r} has an empty answer list")
            for a in answers:
                if a.task_id != task_id:
                    raise InferenceError(
                        f"answer for task {a.task_id!r} filed under {task_id!r}"
                    )


def em_span(method: str, answers_by_task: Mapping[str, Sequence[Answer]]):
    """A ``truth.<method>`` span on the active tracer (no-op when off).

    Truth inference has no platform handle, so EM loops reach the
    observability layer through :mod:`repro.obs.runtime`.
    """
    return current_tracer().span(f"truth.{method}", tasks=len(answers_by_task))


def em_iteration(method: str, iteration: int, delta: float) -> None:
    """Record one EM iteration: an annotation plus a convergence-delta sample."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.annotate("em.iteration", method=method, iteration=iteration, delta=delta)
    metrics = current_metrics()
    # Dotted alias plus the labeled families the exposition/profiler read.
    metrics.observe(f"em.{method}.delta", delta)
    metrics.inc("em.iterations", labels={"method": method})
    metrics.observe("em.delta", delta, labels={"method": method})


def answers_from_platform(
    tasks: Sequence[Task],
    collected: Mapping[str, Sequence[Answer]],
) -> dict[str, list[Answer]]:
    """Normalize a platform ``collect`` result to the inference input shape."""
    return {t.task_id: list(collected.get(t.task_id, [])) for t in tasks}


def label_space(answers_by_task: Mapping[str, Sequence[Answer]]) -> list[Any]:
    """Sorted union of every answered label (stable, hashable order)."""
    labels = {a.value for answers in answers_by_task.values() for a in answers}
    try:
        return sorted(labels)
    except TypeError:
        return sorted(labels, key=repr)


def votes_by_task(
    answers_by_task: Mapping[str, Sequence[Answer]],
) -> dict[str, dict[Any, int]]:
    """Tally raw vote counts per task."""
    tally: dict[str, dict[Any, int]] = {}
    for task_id, answers in answers_by_task.items():
        counts: dict[Any, int] = defaultdict(int)
        for a in answers:
            counts[a.value] += 1
        tally[task_id] = dict(counts)
    return tally


@dataclass(frozen=True)
class SparseObservations:
    """Sparse index encoding of the evidence, shared by all EM kernels.

    One row per answer: ``obs_task[i]``/``obs_worker[i]``/``obs_label[i]``
    are the integer indices of the i-th answer's task, worker, and answered
    label. All vectorized kernels accumulate with ``np.bincount`` over
    (combinations of) these arrays instead of walking the per-task answer
    dicts — Dawid–Skene built exactly this encoding privately; it is hoisted
    here so ZenCrowd, MACE, and GLAD reuse it.

    ``candidate_mask[t, l]`` is True when label ``l`` was actually answered
    for task ``t`` — the per-task candidate set the one-coin methods
    (ZenCrowd, GLAD) restrict their posteriors to.
    """

    task_ids: tuple[str, ...]
    worker_ids: tuple[str, ...]
    labels: tuple[Any, ...]
    obs_task: np.ndarray
    obs_worker: np.ndarray
    obs_label: np.ndarray
    candidate_mask: np.ndarray

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def n_workers(self) -> int:
        return len(self.worker_ids)

    @property
    def n_labels(self) -> int:
        return len(self.labels)

    @property
    def n_obs(self) -> int:
        return len(self.obs_task)

    def flat_task_label(self) -> np.ndarray:
        """Per-answer flat index into a ``(n_tasks, n_labels)`` matrix."""
        return self.obs_task * self.n_labels + self.obs_label

    def flat_worker_label(self) -> np.ndarray:
        """Per-answer flat index into a ``(n_workers, n_labels)`` matrix."""
        return self.obs_worker * self.n_labels + self.obs_label

    def answers_per_task(self) -> np.ndarray:
        """Number of answers received by each task, indexed like ``task_ids``."""
        return np.bincount(self.obs_task, minlength=self.n_tasks)

    def answers_per_worker(self) -> np.ndarray:
        """Number of answers given by each worker, indexed like ``worker_ids``."""
        return np.bincount(self.obs_worker, minlength=self.n_workers)

    def spread_counts(self) -> np.ndarray:
        """Per-task ``k = max(2, |candidates|)`` — the error-spread divisor
        the one-coin likelihoods use (at least binary even for degenerate
        single-candidate tasks)."""
        return np.maximum(2, self.candidate_mask.sum(axis=1))


def encode_observations(
    answers_by_task: Mapping[str, Sequence[Answer]],
) -> SparseObservations:
    """Build the shared sparse encoding from validated evidence.

    Tasks keep mapping order, workers and labels are sorted — the same
    orderings every legacy loop uses, so kernel and legacy paths tie-break
    identically.
    """
    labels = label_space(answers_by_task)
    label_index = {label: i for i, label in enumerate(labels)}
    task_ids = list(answers_by_task)
    task_index = {t: i for i, t in enumerate(task_ids)}
    worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
    worker_index = {w: i for i, w in enumerate(worker_ids)}

    n_obs = sum(len(answers) for answers in answers_by_task.values())
    obs_task = np.empty(n_obs, dtype=np.intp)
    obs_worker = np.empty(n_obs, dtype=np.intp)
    obs_label = np.empty(n_obs, dtype=np.intp)
    i = 0
    for task_id, answers in answers_by_task.items():
        t = task_index[task_id]
        for a in answers:
            obs_task[i] = t
            obs_worker[i] = worker_index[a.worker_id]
            obs_label[i] = label_index[a.value]
            i += 1
    candidate_mask = np.zeros((len(task_ids), len(labels)), dtype=bool)
    candidate_mask[obs_task, obs_label] = True
    return SparseObservations(
        task_ids=tuple(task_ids),
        worker_ids=tuple(worker_ids),
        labels=tuple(labels),
        obs_task=obs_task,
        obs_worker=obs_worker,
        obs_label=obs_label,
        candidate_mask=candidate_mask,
    )


def normalize_log_rows(
    log_like: np.ndarray, mask: np.ndarray | None = None
) -> np.ndarray:
    """Row-normalize log-likelihoods into probabilities (logsumexp).

    Subtracting the row peak before exponentiating means the normalization
    never underflows regardless of how negative the log-likelihoods are —
    the whole point of accumulating in log space. Columns excluded by
    *mask* get probability exactly 0. Every row must have at least one
    unmasked column (guaranteed: every task has at least one answer).
    """
    if mask is not None:
        log_like = np.where(mask, log_like, -np.inf)
    peak = log_like.max(axis=1, keepdims=True)
    with np.errstate(invalid="ignore"):
        out = np.exp(log_like - peak)
    out /= out.sum(axis=1, keepdims=True)
    return out


def posteriors_to_maps(
    obs: SparseObservations,
    posteriors: np.ndarray,
    candidates_only: bool = False,
) -> dict[str, dict[Any, float]]:
    """Convert a ``(n_tasks, n_labels)`` posterior matrix to the dict-of-dicts
    output shape; with *candidates_only*, restrict each task's map to its
    answered labels (the legacy one-coin output contract)."""
    maps: dict[str, dict[Any, float]] = {}
    labels = obs.labels
    for t, task_id in enumerate(obs.task_ids):
        row = posteriors[t]
        if candidates_only:
            maps[task_id] = {
                labels[j]: float(row[j]) for j in np.flatnonzero(obs.candidate_mask[t])
            }
        else:
            maps[task_id] = {labels[j]: float(row[j]) for j in range(len(labels))}
    return maps


def select_truths(
    posterior_maps: Mapping[str, Mapping[Any, float]],
) -> tuple[dict[str, Any], dict[str, float]]:
    """Winner per task under the shared ``(probability, repr)`` tie-break."""
    truths: dict[str, Any] = {}
    confidences: dict[str, float] = {}
    for task_id, post in posterior_maps.items():
        winner = max(post, key=lambda label: (post[label], repr(label)))
        truths[task_id] = winner
        confidences[task_id] = post[winner]
    return truths, confidences


def worker_answer_index(
    answers_by_task: Mapping[str, Sequence[Answer]],
) -> dict[str, list[tuple[str, Any]]]:
    """worker id -> [(task id, value)] across all evidence."""
    index: dict[str, list[tuple[str, Any]]] = defaultdict(list)
    for task_id, answers in answers_by_task.items():
        for a in answers:
            index[a.worker_id].append((task_id, a.value))
    return dict(index)
