"""Truth-inference interface and shared utilities.

Every algorithm consumes the same evidence — a mapping from task id to the
list of :class:`~repro.platform.task.Answer` objects gathered for it — and
produces an :class:`InferenceResult`: the inferred truth per task, a
confidence per task, and an estimated quality per worker. Ground truth is
never consulted.

The algorithms cover the design space the SIGMOD'17 tutorial lays out:

======================  ==========================  =====================
Algorithm               Worker model                Technique
======================  ==========================  =====================
MajorityVote            none                        direct aggregation
WeightedMajorityVote    worker probability          weighted aggregation
ZenCrowd                worker probability          EM
DawidSkene              confusion matrix            EM
Glad                    ability x difficulty        EM / gradient ascent
BayesianVote            worker probability + prior  iterated posterior
MeanAggregator etc.     numeric noise               robust statistics
======================  ==========================  =====================
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import InferenceError
from repro.obs.runtime import current_metrics, current_tracer
from repro.platform.task import Answer, Task


@dataclass
class InferenceResult:
    """Output of a truth-inference run.

    Attributes:
        truths: task id -> inferred value.
        confidences: task id -> posterior probability (or analogous score in
            [0, 1]) of the inferred value.
        worker_quality: worker id -> estimated accuracy in [0, 1]. For
            confusion-matrix methods this is the mean diagonal.
        iterations: EM / fixed-point iterations executed (0 for one-shot).
        converged: whether iteration stopped by tolerance rather than cap.
        posteriors: task id -> {label: probability} when available.
    """

    truths: dict[str, Any]
    confidences: dict[str, float] = field(default_factory=dict)
    worker_quality: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    posteriors: dict[str, dict[Any, float]] = field(default_factory=dict)

    def accuracy_against(self, truth_by_task: Mapping[str, Any]) -> float:
        """Fraction of tasks whose inferred value matches *truth_by_task*.

        Only tasks present in both mappings are scored; empty overlap
        raises, because silently returning 0 or 1 hides harness bugs.
        """
        common = [t for t in self.truths if t in truth_by_task]
        if not common:
            raise InferenceError("no overlapping tasks to score accuracy on")
        hits = sum(1 for t in common if self.truths[t] == truth_by_task[t])
        return hits / len(common)


class TruthInference:
    """Base class for truth-inference algorithms."""

    name = "base"

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        """Infer truths from the evidence. Subclasses must override."""
        raise NotImplementedError

    def export_state(self) -> dict[str, Any]:
        """JSON-serializable warm-start state for checkpointing.

        Stateless methods (majority voting and friends) return ``{}``. EM
        methods export their estimated worker parameters so a resumed
        session can re-converge from where it left off instead of from the
        cold prior.
        """
        return {}

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Seed the next :meth:`infer` from previously exported state.

        A no-op by default; EM subclasses override. Warm starting changes
        initialization only — the fixed point is the same, iteration counts
        may differ — so bit-identity harnesses leave it off.
        """

    @staticmethod
    def _validate(answers_by_task: Mapping[str, Sequence[Answer]]) -> None:
        if not answers_by_task:
            raise InferenceError("no answers supplied")
        for task_id, answers in answers_by_task.items():
            if not answers:
                raise InferenceError(f"task {task_id!r} has an empty answer list")
            for a in answers:
                if a.task_id != task_id:
                    raise InferenceError(
                        f"answer for task {a.task_id!r} filed under {task_id!r}"
                    )


def em_span(method: str, answers_by_task: Mapping[str, Sequence[Answer]]):
    """A ``truth.<method>`` span on the active tracer (no-op when off).

    Truth inference has no platform handle, so EM loops reach the
    observability layer through :mod:`repro.obs.runtime`.
    """
    return current_tracer().span(f"truth.{method}", tasks=len(answers_by_task))


def em_iteration(method: str, iteration: int, delta: float) -> None:
    """Record one EM iteration: an annotation plus a convergence-delta sample."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.annotate("em.iteration", method=method, iteration=iteration, delta=delta)
    current_metrics().observe(f"em.{method}.delta", delta)


def answers_from_platform(
    tasks: Sequence[Task],
    collected: Mapping[str, Sequence[Answer]],
) -> dict[str, list[Answer]]:
    """Normalize a platform ``collect`` result to the inference input shape."""
    return {t.task_id: list(collected.get(t.task_id, [])) for t in tasks}


def label_space(answers_by_task: Mapping[str, Sequence[Answer]]) -> list[Any]:
    """Sorted union of every answered label (stable, hashable order)."""
    labels = {a.value for answers in answers_by_task.values() for a in answers}
    try:
        return sorted(labels)
    except TypeError:
        return sorted(labels, key=repr)


def votes_by_task(
    answers_by_task: Mapping[str, Sequence[Answer]],
) -> dict[str, dict[Any, int]]:
    """Tally raw vote counts per task."""
    tally: dict[str, dict[Any, int]] = {}
    for task_id, answers in answers_by_task.items():
        counts: dict[Any, int] = defaultdict(int)
        for a in answers:
            counts[a.value] += 1
        tally[task_id] = dict(counts)
    return tally


def worker_answer_index(
    answers_by_task: Mapping[str, Sequence[Answer]],
) -> dict[str, list[tuple[str, Any]]]:
    """worker id -> [(task id, value)] across all evidence."""
    index: dict[str, list[tuple[str, Any]]] = defaultdict(list)
    for task_id, answers in answers_by_task.items():
        for a in answers:
            index[a.worker_id].append((task_id, a.value))
    return dict(index)
