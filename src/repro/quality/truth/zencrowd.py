"""ZenCrowd-style truth inference: EM over one-coin worker reliabilities.

The *worker probability* model: worker w answers correctly with a single
reliability p_w, and errors are spread uniformly over the remaining labels
of each task. Lighter-weight than Dawid–Skene (one parameter per worker),
it is the tutorial's canonical middle ground between MV and full confusion
matrices — and unlike DS it handles tasks whose option sets differ.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    votes_by_task,
)


class ZenCrowd(TruthInference):
    """One-coin EM truth inference.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Convergence threshold on the max posterior change.
        prior_reliability: Initial p_w for every worker.
    """

    name = "zc"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_reliability: float = 0.7,
    ):
        if not 0.0 < prior_reliability < 1.0:
            raise InferenceError("prior_reliability must be in (0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_reliability = prior_reliability
        self._warm_reliability: dict[str, float] = {}
        self._last_reliability: dict[str, float] = {}

    def export_state(self) -> dict[str, Any]:
        """Worker reliabilities estimated by the most recent :meth:`infer`."""
        return {"reliability": dict(self._last_reliability)}

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Initialize the next EM run from exported worker reliabilities."""
        self._warm_reliability = dict(state.get("reliability", {}))

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        # Candidate label set per task = labels actually answered for it.
        candidates: dict[str, list[Any]] = {
            task_id: sorted(counts, key=repr)
            for task_id, counts in votes_by_task(answers_by_task).items()
        }
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        reliability = {
            w: self._warm_reliability.get(w, self.prior_reliability) for w in worker_ids
        }

        posteriors: dict[str, dict[Any, float]] = {}
        iterations = 0
        converged = False
        span = em_span(self.name, answers_by_task)
        for iterations in range(1, self.max_iterations + 1):
            # E-step: posterior over each task's candidate labels.
            new_posteriors: dict[str, dict[Any, float]] = {}
            for task_id, answers in answers_by_task.items():
                labels = candidates[task_id]
                k = max(2, len(labels))  # at least binary error spread
                scores: dict[Any, float] = {}
                for label in labels:
                    likelihood = 1.0
                    for a in answers:
                        p = min(0.999, max(0.001, reliability[a.worker_id]))
                        if a.value == label:
                            likelihood *= p
                        else:
                            likelihood *= (1.0 - p) / (k - 1)
                    scores[label] = likelihood
                total = sum(scores.values())
                if total <= 0:
                    uniform = 1.0 / len(labels)
                    new_posteriors[task_id] = {label: uniform for label in labels}
                else:
                    new_posteriors[task_id] = {
                        label: s / total for label, s in scores.items()
                    }

            # M-step: reliability = expected fraction of correct answers.
            mass: dict[str, float] = {w: 0.0 for w in worker_ids}
            count: dict[str, int] = {w: 0 for w in worker_ids}
            for task_id, answers in answers_by_task.items():
                post = new_posteriors[task_id]
                for a in answers:
                    mass[a.worker_id] += post.get(a.value, 0.0)
                    count[a.worker_id] += 1
            new_reliability = {
                w: (mass[w] + 1.0) / (count[w] + 2.0)  # Beta(1,1) smoothing
                for w in worker_ids
            }

            delta = 0.0
            if posteriors:
                for task_id, post in new_posteriors.items():
                    for label, p in post.items():
                        delta = max(delta, abs(p - posteriors[task_id].get(label, 0.0)))
            else:
                delta = 1.0
            posteriors = new_posteriors
            reliability = new_reliability
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break
        span.set_tag("iterations", iterations)
        span.set_tag("converged", converged)
        span.__exit__(None, None, None)

        self._last_reliability = dict(reliability)
        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        for task_id, post in posteriors.items():
            winner = max(post, key=lambda label: (post[label], repr(label)))
            truths[task_id] = winner
            confidences[task_id] = post[winner]
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=dict(reliability),
            iterations=iterations,
            converged=converged,
            posteriors=posteriors,
        )
