"""ZenCrowd-style truth inference: EM over one-coin worker reliabilities.

The *worker probability* model: worker w answers correctly with a single
reliability p_w, and errors are spread uniformly over the remaining labels
of each task. Lighter-weight than Dawid–Skene (one parameter per worker),
it is the tutorial's canonical middle ground between MV and full confusion
matrices — and unlike DS it handles tasks whose option sets differ.

Two execution backends share the model math (see ``EM_BACKENDS``): the
default ``kernel`` backend runs the EM loop as batched numpy operations
over the shared :class:`~repro.quality.truth.base.SparseObservations`
encoding with likelihoods accumulated in log space, so answer-heavy tasks
can no longer underflow the E-step into a uniform posterior; the
``legacy`` backend is the original per-answer loop, kept as the reference
side of the differential harness.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    encode_observations,
    normalize_log_rows,
    posteriors_to_maps,
    resolve_backend,
    select_truths,
    votes_by_task,
)


class ZenCrowd(TruthInference):
    """One-coin EM truth inference.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Convergence threshold on the max posterior change.
        prior_reliability: Initial p_w for every worker.
        backend: ``"kernel"`` (vectorized, log-space) or ``"legacy"``.
    """

    name = "zc"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_reliability: float = 0.7,
        backend: str = "kernel",
    ):
        if not 0.0 < prior_reliability < 1.0:
            raise InferenceError("prior_reliability must be in (0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_reliability = prior_reliability
        self.backend = resolve_backend(backend)
        self._warm_reliability: dict[str, float] = {}
        self._last_reliability: dict[str, float] = {}

    def export_state(self) -> dict[str, Any]:
        """Worker reliabilities estimated by the most recent :meth:`infer`."""
        return {"reliability": dict(self._last_reliability)}

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Initialize the next EM run from exported worker reliabilities."""
        self._warm_reliability = dict(state.get("reliability", {}))

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        with em_span(self.name, answers_by_task) as span:
            if self.backend == "kernel":
                result = self._infer_kernel(answers_by_task)
            else:
                result = self._infer_legacy(answers_by_task)
            span.set_tag("iterations", result.iterations)
            span.set_tag("converged", result.converged)
        return result

    # ------------------------------------------------------------------ #
    # Vectorized log-space kernel
    # ------------------------------------------------------------------ #

    def _infer_kernel(
        self, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> InferenceResult:
        obs = encode_observations(answers_by_task)
        n_tasks, n_labels = obs.n_tasks, obs.n_labels
        reliability = np.array(
            [self._warm_reliability.get(w, self.prior_reliability) for w in obs.worker_ids]
        )
        # log(k - 1) per answer: the error-spread divisor of the answer's task.
        log_spread = np.log(obs.spread_counts() - 1.0)[obs.obs_task]
        flat_tl = obs.flat_task_label()
        count = obs.answers_per_worker()

        posteriors = np.zeros((n_tasks, n_labels))
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # E-step in log space. log L(t, l) decomposes into a per-task
            # base (every answer scored as an error) plus, on each answered
            # label, the correction from error to correct.
            p = np.clip(reliability, 0.001, 0.999)
            log_err = np.log1p(-p)[obs.obs_worker] - log_spread
            base = np.bincount(obs.obs_task, weights=log_err, minlength=n_tasks)
            corr = np.log(p)[obs.obs_worker] - log_err
            log_like = base[:, None] + np.bincount(
                flat_tl, weights=corr, minlength=n_tasks * n_labels
            ).reshape(n_tasks, n_labels)
            new_posteriors = normalize_log_rows(log_like, mask=obs.candidate_mask)

            # M-step: reliability = expected fraction of correct answers,
            # Beta(2,2)/Laplace posterior-mean smoothed.
            mass = np.bincount(
                obs.obs_worker,
                weights=new_posteriors[obs.obs_task, obs.obs_label],
                minlength=obs.n_workers,
            )
            reliability = (mass + 1.0) / (count + 2.0)

            delta = (
                float(np.abs(new_posteriors - posteriors).max()) if iterations > 1 else 1.0
            )
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break

        self._last_reliability = {
            w: float(r) for w, r in zip(obs.worker_ids, reliability)
        }
        posterior_maps = posteriors_to_maps(obs, posteriors, candidates_only=True)
        truths, confidences = select_truths(posterior_maps)
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=dict(self._last_reliability),
            iterations=iterations,
            converged=converged,
            posteriors=posterior_maps,
        )

    # ------------------------------------------------------------------ #
    # Legacy per-answer loop (linear-space likelihoods)
    # ------------------------------------------------------------------ #

    def _infer_legacy(
        self, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> InferenceResult:
        # Candidate label set per task = labels actually answered for it.
        candidates: dict[str, list[Any]] = {
            task_id: sorted(counts, key=repr)
            for task_id, counts in votes_by_task(answers_by_task).items()
        }
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        reliability = {
            w: self._warm_reliability.get(w, self.prior_reliability) for w in worker_ids
        }

        posteriors: dict[str, dict[Any, float]] = {}
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # E-step: posterior over each task's candidate labels. Linear
            # space: products of ~300+ per-answer factors underflow to 0.0
            # and collapse to the uniform fallback below — the bug the
            # kernel backend fixes.
            new_posteriors: dict[str, dict[Any, float]] = {}
            for task_id, answers in answers_by_task.items():
                labels = candidates[task_id]
                k = max(2, len(labels))  # at least binary error spread
                scores: dict[Any, float] = {}
                for label in labels:
                    likelihood = 1.0
                    for a in answers:
                        p = min(0.999, max(0.001, reliability[a.worker_id]))
                        if a.value == label:
                            likelihood *= p
                        else:
                            likelihood *= (1.0 - p) / (k - 1)
                    scores[label] = likelihood
                total = sum(scores.values())
                if total <= 0:
                    uniform = 1.0 / len(labels)
                    new_posteriors[task_id] = {label: uniform for label in labels}
                else:
                    new_posteriors[task_id] = {
                        label: s / total for label, s in scores.items()
                    }

            # M-step: reliability = expected fraction of correct answers.
            mass: dict[str, float] = {w: 0.0 for w in worker_ids}
            count: dict[str, int] = {w: 0 for w in worker_ids}
            for task_id, answers in answers_by_task.items():
                post = new_posteriors[task_id]
                for a in answers:
                    mass[a.worker_id] += post.get(a.value, 0.0)
                    count[a.worker_id] += 1
            new_reliability = {
                # Beta(2,2)/Laplace posterior-mean smoothing: one pseudo
                # success and one pseudo failure (same form MACE uses for
                # competence), not Beta(1,1) as previously claimed.
                w: (mass[w] + 1.0) / (count[w] + 2.0)
                for w in worker_ids
            }

            delta = 0.0
            if posteriors:
                for task_id, post in new_posteriors.items():
                    for label, p in post.items():
                        delta = max(delta, abs(p - posteriors[task_id].get(label, 0.0)))
            else:
                delta = 1.0
            posteriors = new_posteriors
            reliability = new_reliability
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break

        self._last_reliability = dict(reliability)
        truths, confidences = select_truths(posteriors)
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=dict(reliability),
            iterations=iterations,
            converged=converged,
            posteriors=posteriors,
        )
