"""Majority voting and weighted majority voting."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.platform.task import Answer
from repro.quality.truth.base import InferenceResult, TruthInference, votes_by_task


def _break_tie(counts: dict[Any, int]) -> Any:
    """Deterministic tie-break: highest count, then smallest repr."""
    best = max(counts.values())
    tied = [label for label, c in counts.items() if c == best]
    return min(tied, key=repr)


class MajorityVote(TruthInference):
    """Plain majority voting: the mode of the answers wins.

    Confidence is the winning vote share — the standard MV posterior proxy.
    Worker quality is estimated post hoc as each worker's agreement rate
    with the majority answer (useful as a seed for weighted methods).
    """

    name = "mv"

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        tally = votes_by_task(answers_by_task)
        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        posteriors: dict[str, dict[Any, float]] = {}
        for task_id, counts in tally.items():
            total = sum(counts.values())
            winner = _break_tie(counts)
            truths[task_id] = winner
            confidences[task_id] = counts[winner] / total
            posteriors[task_id] = {label: c / total for label, c in counts.items()}

        agreement: dict[str, list[int]] = {}
        for task_id, answers in answers_by_task.items():
            for a in answers:
                agreement.setdefault(a.worker_id, []).append(
                    1 if a.value == truths[task_id] else 0
                )
        worker_quality = {w: sum(v) / len(v) for w, v in agreement.items()}
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            posteriors=posteriors,
        )


class WeightedMajorityVote(TruthInference):
    """Majority voting with per-worker weights.

    Weights default to agreement-with-majority estimated by a plain MV
    pass (one round of the classic iterate-between-truth-and-quality
    scheme); callers may instead supply known qualities, e.g. from gold
    tasks (:mod:`repro.quality.workerqc`).

    Weights are clipped to a small positive floor so a single terrible
    worker cannot produce negative/zero mass, and are used as-is (log-odds
    weighting is left to the Bayesian method).
    """

    name = "wmv"

    def __init__(self, worker_weights: Mapping[str, float] | None = None, floor: float = 0.05):
        self.worker_weights = dict(worker_weights) if worker_weights else None
        self.floor = floor

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        if self.worker_weights is None:
            weights = MajorityVote().infer(answers_by_task).worker_quality
        else:
            weights = self.worker_weights
        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        posteriors: dict[str, dict[Any, float]] = {}
        for task_id, answers in answers_by_task.items():
            scores: dict[Any, float] = {}
            for a in answers:
                w = max(self.floor, weights.get(a.worker_id, 0.5))
                scores[a.value] = scores.get(a.value, 0.0) + w
            total = sum(scores.values())
            best = max(scores.values())
            tied = [label for label, s in scores.items() if s == best]
            winner = min(tied, key=repr)
            truths[task_id] = winner
            confidences[task_id] = best / total if total > 0 else 0.0
            posteriors[task_id] = {label: s / total for label, s in scores.items()}
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality={w: float(v) for w, v in weights.items()},
            posteriors=posteriors,
        )
