"""Truth inference for numeric tasks: mean, median, and CATD-style weighting.

Numeric crowdsourced answers (counts, estimates, ratings) need different
aggregation from categorical labels. The tutorial surveys three levels:

* :class:`MeanAggregator` — the naive baseline, sensitive to outliers.
* :class:`MedianAggregator` — the robust order-statistic baseline.
* :class:`CatdAggregator` — confidence-aware source weighting in the style
  of CATD/PM: iterate between per-worker weights inversely proportional to
  their (chi-square upper-bounded) deviation from the current estimates and
  weighted estimates of the truths.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import InferenceResult, TruthInference


def _numeric_values(answers: Sequence[Answer]) -> list[float]:
    values = []
    for a in answers:
        if not isinstance(a.value, (int, float)) or isinstance(a.value, bool):
            raise InferenceError(
                f"numeric aggregation received non-numeric answer {a.value!r}"
            )
        values.append(float(a.value))
    return values


class MeanAggregator(TruthInference):
    """Arithmetic mean per task; confidence = 1/(1+coefficient of variation)."""

    name = "mean"

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        for task_id, answers in answers_by_task.items():
            values = np.array(_numeric_values(answers))
            mean = float(values.mean())
            truths[task_id] = mean
            spread = float(values.std()) / (abs(mean) + 1e-9)
            confidences[task_id] = 1.0 / (1.0 + spread)
        return InferenceResult(truths=truths, confidences=confidences)


class MedianAggregator(TruthInference):
    """Median per task — robust to spammer outliers."""

    name = "median"

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        for task_id, answers in answers_by_task.items():
            values = np.array(_numeric_values(answers))
            median = float(np.median(values))
            truths[task_id] = median
            mad = float(np.median(np.abs(values - median)))
            confidences[task_id] = 1.0 / (1.0 + mad / (abs(median) + 1e-9))
        return InferenceResult(truths=truths, confidences=confidences)


class CatdAggregator(TruthInference):
    """Confidence-aware truth discovery for numeric answers.

    Iterates:
      1. truth_t = weighted mean of answers with current worker weights;
      2. weight_w ∝ 1 / (sum of squared normalized residuals of w + eps),
         scaled by a chi-square-style confidence factor that shrinks the
         weight of workers with few answers.

    Args:
        max_iterations / tolerance: fixed-point controls.
    """

    name = "catd"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-8):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        weights = {w: 1.0 for w in worker_ids}
        truths: dict[str, float] = {}

        iterations = 0
        converged = False
        previous: dict[str, float] = {}
        for iterations in range(1, self.max_iterations + 1):
            # Weighted truth estimates.
            for task_id, answers in answers_by_task.items():
                values = _numeric_values(answers)
                ws = [weights[a.worker_id] for a in answers]
                total = sum(ws)
                if total <= 0:
                    truths[task_id] = float(np.mean(values))
                else:
                    truths[task_id] = sum(v * w for v, w in zip(values, ws)) / total

            # Residual-based weights with small-sample damping.
            residual: dict[str, float] = {w: 0.0 for w in worker_ids}
            counts: dict[str, int] = {w: 0 for w in worker_ids}
            for task_id, answers in answers_by_task.items():
                scale = abs(truths[task_id]) + 1e-9
                for a in answers:
                    err = (float(a.value) - truths[task_id]) / scale
                    residual[a.worker_id] += err * err
                    counts[a.worker_id] += 1
            for w in worker_ids:
                n = counts[w]
                if n == 0:
                    weights[w] = 1.0
                    continue
                # chi-square-flavoured confidence factor: more answers ->
                # closer to 1; few answers -> damped toward the mean weight.
                confidence = n / (n + 2.0)
                weights[w] = confidence / (residual[w] / n + 1e-6)
            peak = max(weights.values())
            if peak > 0:
                weights = {w: v / peak for w, v in weights.items()}

            if previous:
                delta = max(
                    abs(truths[t] - previous[t]) / (abs(previous[t]) + 1e-9) for t in truths
                )
                if delta < self.tolerance:
                    converged = True
                    break
            previous = dict(truths)

        confidences = {}
        for task_id, answers in answers_by_task.items():
            values = np.array(_numeric_values(answers))
            spread = float(values.std()) / (abs(truths[task_id]) + 1e-9)
            confidences[task_id] = 1.0 / (1.0 + spread)
        # Normalize worker weights into [0, 1] quality scores.
        quality = {w: float(1.0 - math.exp(-v)) for w, v in weights.items()}
        return InferenceResult(
            truths=dict(truths),
            confidences=confidences,
            worker_quality=quality,
            iterations=iterations,
            converged=converged,
        )
