"""GLAD truth inference: jointly estimate worker ability and task difficulty.

Whitehill et al.'s model, surveyed by the tutorial as the representative
*ability × difficulty* method: the probability that worker w answers task t
correctly is ``sigmoid(alpha_w * beta_t)`` with ability ``alpha_w`` in R and
inverse-difficulty ``beta_t > 0``. Errors spread uniformly over the other
candidate labels. EM alternates task posteriors (E) with gradient ascent on
(alpha, log beta) (M).

Two execution backends share the model math (see ``EM_BACKENDS``): the
default ``kernel`` backend vectorizes both the gradient-ascent M-step and
the log-space E-step over the shared sparse observation encoding;
``legacy`` is the original per-answer loop kept for the differential
harness.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    encode_observations,
    normalize_log_rows,
    posteriors_to_maps,
    resolve_backend,
    select_truths,
    votes_by_task,
)


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


def _sigmoid_arr(x: np.ndarray) -> np.ndarray:
    """Overflow-safe elementwise sigmoid (same branches as :func:`_sigmoid`)."""
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


class Glad(TruthInference):
    """GLAD EM with gradient-ascent M-step.

    Args:
        max_iterations: Outer EM iteration cap.
        gradient_steps: Gradient-ascent steps per M-step.
        learning_rate: Step size for ability/difficulty updates.
        tolerance: Convergence threshold on max posterior change.
        prior_ability: Initial alpha for every worker.
        backend: ``"kernel"`` (vectorized, log-space) or ``"legacy"``.
    """

    name = "glad"

    def __init__(
        self,
        max_iterations: int = 50,
        gradient_steps: int = 10,
        learning_rate: float = 0.05,
        tolerance: float = 1e-5,
        prior_ability: float = 1.0,
        backend: str = "kernel",
    ):
        if max_iterations < 1 or gradient_steps < 1:
            raise InferenceError("iteration counts must be >= 1")
        self.max_iterations = max_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.tolerance = tolerance
        self.prior_ability = prior_ability
        self.backend = resolve_backend(backend)
        self._warm_ability: dict[str, float] = {}
        self._warm_log_beta: dict[str, float] = {}
        self._last_ability: dict[str, float] = {}
        self._last_difficulty: dict[str, float] = {}

    def export_state(self) -> dict[str, Any]:
        """Worker abilities and task difficulties from the last run."""
        return {
            "ability": dict(self._last_ability),
            "task_difficulty": dict(self._last_difficulty),
        }

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Initialize the next EM run from exported abilities/difficulties.

        Difficulty d maps back to the internal parameter via
        ``log_beta = log((1 - d) / d)``, clipped to the optimizer's box.
        """
        self._warm_ability = dict(state.get("ability", {}))
        self._warm_log_beta = {}
        for task_id, diff in state.get("task_difficulty", {}).items():
            d = min(max(float(diff), 1e-6), 1.0 - 1e-6)
            self._warm_log_beta[task_id] = max(-3.0, min(3.0, math.log((1.0 - d) / d)))

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        with em_span(self.name, answers_by_task) as span:
            if self.backend == "kernel":
                result = self._infer_kernel(answers_by_task)
            else:
                result = self._infer_legacy(answers_by_task)
            span.set_tag("iterations", result.iterations)
            span.set_tag("converged", result.converged)
        return result

    # ------------------------------------------------------------------ #
    # Vectorized log-space kernel
    # ------------------------------------------------------------------ #

    def _infer_kernel(
        self, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> InferenceResult:
        obs = encode_observations(answers_by_task)
        n_tasks, n_labels = obs.n_tasks, obs.n_labels
        alpha = np.array(
            [self._warm_ability.get(w, self.prior_ability) for w in obs.worker_ids]
        )
        log_beta = np.array(
            [self._warm_log_beta.get(t, 0.0) for t in obs.task_ids]
        )  # beta = exp(log_beta) > 0

        log_spread = np.log(obs.spread_counts() - 1.0)[obs.obs_task]
        flat_tl = obs.flat_task_label()

        # Warm-start posteriors from vote shares over each task's candidates.
        posteriors = np.bincount(flat_tl, minlength=n_tasks * n_labels).reshape(
            n_tasks, n_labels
        ) / obs.answers_per_task()[:, None]

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # ----- M-step: gradient ascent on expected log-likelihood. -----
            for _ in range(self.gradient_steps):
                beta_obs = np.exp(log_beta)[obs.obs_task]
                sig = _sigmoid_arr(alpha[obs.obs_worker] * beta_obs)
                p_correct = posteriors[obs.obs_task, obs.obs_label]
                # d/dx of E[log P(answer)]:
                #   correct with prob q: q*(1-sig) ; incorrect: -(1-q)*sig
                # (error likelihood (1-sig)/(k-1); the 1/(k-1) is
                #  constant w.r.t. parameters)
                dx = p_correct * (1.0 - sig) - (1.0 - p_correct) * sig
                grad_alpha = np.bincount(
                    obs.obs_worker, weights=dx * beta_obs, minlength=obs.n_workers
                )
                grad_logbeta = np.bincount(
                    obs.obs_task,
                    weights=dx * alpha[obs.obs_worker] * beta_obs,
                    minlength=n_tasks,
                )
                alpha = np.clip(alpha + self.learning_rate * grad_alpha, -6.0, 6.0)
                log_beta = np.clip(log_beta + self.learning_rate * grad_logbeta, -3.0, 3.0)

            # ----- E-step: posteriors from log-likelihoods. -----
            sig = np.clip(
                _sigmoid_arr(alpha[obs.obs_worker] * np.exp(log_beta)[obs.obs_task]),
                0.001,
                0.999,
            )
            log_err = np.log1p(-sig) - log_spread
            base = np.bincount(obs.obs_task, weights=log_err, minlength=n_tasks)
            corr = np.log(sig) - log_err
            log_like = base[:, None] + np.bincount(
                flat_tl, weights=corr, minlength=n_tasks * n_labels
            ).reshape(n_tasks, n_labels)
            new_posteriors = normalize_log_rows(log_like, mask=obs.candidate_mask)

            delta = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break

        self._last_ability = {w: float(a) for w, a in zip(obs.worker_ids, alpha)}
        self._last_difficulty = {
            t: 1.0 - _sigmoid(float(lb)) for t, lb in zip(obs.task_ids, log_beta)
        }
        posterior_maps = posteriors_to_maps(obs, posteriors, candidates_only=True)
        truths, confidences = select_truths(posterior_maps)
        worker_quality = {
            w: _sigmoid(float(a)) for w, a in zip(obs.worker_ids, alpha)
        }
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            iterations=iterations,
            converged=converged,
            posteriors=posterior_maps,
            task_difficulty=dict(self._last_difficulty),
        )

    # ------------------------------------------------------------------ #
    # Legacy per-answer loop
    # ------------------------------------------------------------------ #

    def _infer_legacy(
        self, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> InferenceResult:
        tally = votes_by_task(answers_by_task)
        candidates: dict[str, list[Any]] = {
            task_id: sorted(counts, key=repr) for task_id, counts in tally.items()
        }
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        alpha = {w: self._warm_ability.get(w, self.prior_ability) for w in worker_ids}
        log_beta = {
            t: self._warm_log_beta.get(t, 0.0) for t in answers_by_task
        }  # beta = exp(log_beta) > 0

        # Warm-start posteriors from vote shares.
        posteriors: dict[str, dict[Any, float]] = {}
        for task_id, counts in tally.items():
            total = sum(counts.values())
            posteriors[task_id] = {label: c / total for label, c in counts.items()}

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # ----- M-step: gradient ascent on expected log-likelihood. -----
            for _ in range(self.gradient_steps):
                grad_alpha = {w: 0.0 for w in worker_ids}
                grad_logbeta = {t: 0.0 for t in answers_by_task}
                for task_id, answers in answers_by_task.items():
                    beta = math.exp(log_beta[task_id])
                    post = posteriors[task_id]
                    for a in answers:
                        x = alpha[a.worker_id] * beta
                        sig = _sigmoid(x)
                        p_correct = post.get(a.value, 0.0)
                        # d/dx of E[log P(answer)]:
                        #   correct with prob q: q*(1-sig) ; incorrect: -(1-q)*sig
                        # (error likelihood (1-sig)/(k-1); the 1/(k-1) is
                        #  constant w.r.t. parameters)
                        dx = p_correct * (1.0 - sig) - (1.0 - p_correct) * sig
                        grad_alpha[a.worker_id] += dx * beta
                        grad_logbeta[task_id] += dx * alpha[a.worker_id] * beta
                for w in worker_ids:
                    alpha[w] += self.learning_rate * grad_alpha[w]
                    alpha[w] = max(-6.0, min(6.0, alpha[w]))
                for t in answers_by_task:
                    log_beta[t] += self.learning_rate * grad_logbeta[t]
                    log_beta[t] = max(-3.0, min(3.0, log_beta[t]))

            # ----- E-step: recompute posteriors. -----
            new_posteriors: dict[str, dict[Any, float]] = {}
            for task_id, answers in answers_by_task.items():
                labels = candidates[task_id]
                k = max(2, len(labels))
                beta = math.exp(log_beta[task_id])
                scores: dict[Any, float] = {}
                for label in labels:
                    log_like = 0.0
                    for a in answers:
                        sig = _sigmoid(alpha[a.worker_id] * beta)
                        sig = min(0.999, max(0.001, sig))
                        if a.value == label:
                            log_like += math.log(sig)
                        else:
                            log_like += math.log((1.0 - sig) / (k - 1))
                    scores[label] = log_like
                peak = max(scores.values())
                exp_scores = {label: math.exp(s - peak) for label, s in scores.items()}
                total = sum(exp_scores.values())
                new_posteriors[task_id] = {
                    label: s / total for label, s in exp_scores.items()
                }

            delta = max(
                abs(p - posteriors[task_id].get(label, 0.0))
                for task_id, post in new_posteriors.items()
                for label, p in post.items()
            )
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break

        self._last_ability = dict(alpha)
        self._last_difficulty = {
            t: 1.0 - _sigmoid(lb) for t, lb in log_beta.items()
        }
        truths, confidences = select_truths(posteriors)
        worker_quality = {w: _sigmoid(alpha[w]) for w in worker_ids}
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            iterations=iterations,
            converged=converged,
            posteriors=posteriors,
            task_difficulty=dict(self._last_difficulty),
        )
