"""GLAD truth inference: jointly estimate worker ability and task difficulty.

Whitehill et al.'s model, surveyed by the tutorial as the representative
*ability × difficulty* method: the probability that worker w answers task t
correctly is ``sigmoid(alpha_w * beta_t)`` with ability ``alpha_w`` in R and
inverse-difficulty ``beta_t > 0``. Errors spread uniformly over the other
candidate labels. EM alternates task posteriors (E) with gradient ascent on
(alpha, log beta) (M).
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    votes_by_task,
)


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


class Glad(TruthInference):
    """GLAD EM with gradient-ascent M-step.

    Args:
        max_iterations: Outer EM iteration cap.
        gradient_steps: Gradient-ascent steps per M-step.
        learning_rate: Step size for ability/difficulty updates.
        tolerance: Convergence threshold on max posterior change.
        prior_ability: Initial alpha for every worker.
    """

    name = "glad"

    def __init__(
        self,
        max_iterations: int = 50,
        gradient_steps: int = 10,
        learning_rate: float = 0.05,
        tolerance: float = 1e-5,
        prior_ability: float = 1.0,
    ):
        if max_iterations < 1 or gradient_steps < 1:
            raise InferenceError("iteration counts must be >= 1")
        self.max_iterations = max_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.tolerance = tolerance
        self.prior_ability = prior_ability

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        tally = votes_by_task(answers_by_task)
        candidates: dict[str, list[Any]] = {
            task_id: sorted(counts, key=repr) for task_id, counts in tally.items()
        }
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        alpha = {w: self.prior_ability for w in worker_ids}
        log_beta = {t: 0.0 for t in answers_by_task}  # beta = exp(log_beta) > 0

        # Warm-start posteriors from vote shares.
        posteriors: dict[str, dict[Any, float]] = {}
        for task_id, counts in tally.items():
            total = sum(counts.values())
            posteriors[task_id] = {label: c / total for label, c in counts.items()}

        iterations = 0
        converged = False
        span = em_span(self.name, answers_by_task)
        for iterations in range(1, self.max_iterations + 1):
            # ----- M-step: gradient ascent on expected log-likelihood. -----
            for _ in range(self.gradient_steps):
                grad_alpha = {w: 0.0 for w in worker_ids}
                grad_logbeta = {t: 0.0 for t in answers_by_task}
                for task_id, answers in answers_by_task.items():
                    beta = math.exp(log_beta[task_id])
                    k = max(2, len(candidates[task_id]))
                    post = posteriors[task_id]
                    for a in answers:
                        x = alpha[a.worker_id] * beta
                        sig = _sigmoid(x)
                        p_correct = post.get(a.value, 0.0)
                        # d/dx of E[log P(answer)]:
                        #   correct with prob q: q*(1-sig) ; incorrect: -(1-q)*sig
                        # (error likelihood (1-sig)/(k-1); the 1/(k-1) is
                        #  constant w.r.t. parameters)
                        dx = p_correct * (1.0 - sig) - (1.0 - p_correct) * sig
                        grad_alpha[a.worker_id] += dx * beta
                        grad_logbeta[task_id] += dx * alpha[a.worker_id] * beta
                for w in worker_ids:
                    alpha[w] += self.learning_rate * grad_alpha[w]
                    alpha[w] = max(-6.0, min(6.0, alpha[w]))
                for t in answers_by_task:
                    log_beta[t] += self.learning_rate * grad_logbeta[t]
                    log_beta[t] = max(-3.0, min(3.0, log_beta[t]))

            # ----- E-step: recompute posteriors. -----
            new_posteriors: dict[str, dict[Any, float]] = {}
            for task_id, answers in answers_by_task.items():
                labels = candidates[task_id]
                k = max(2, len(labels))
                beta = math.exp(log_beta[task_id])
                scores: dict[Any, float] = {}
                for label in labels:
                    log_like = 0.0
                    for a in answers:
                        sig = _sigmoid(alpha[a.worker_id] * beta)
                        sig = min(0.999, max(0.001, sig))
                        if a.value == label:
                            log_like += math.log(sig)
                        else:
                            log_like += math.log((1.0 - sig) / (k - 1))
                    scores[label] = log_like
                peak = max(scores.values())
                exp_scores = {label: math.exp(s - peak) for label, s in scores.items()}
                total = sum(exp_scores.values())
                new_posteriors[task_id] = {
                    label: s / total for label, s in exp_scores.items()
                }

            delta = max(
                abs(p - posteriors[task_id].get(label, 0.0))
                for task_id, post in new_posteriors.items()
                for label, p in post.items()
            )
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break
        span.set_tag("iterations", iterations)
        span.set_tag("converged", converged)
        span.__exit__(None, None, None)

        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        for task_id, post in posteriors.items():
            winner = max(post, key=lambda label: (post[label], repr(label)))
            truths[task_id] = winner
            confidences[task_id] = post[winner]
        worker_quality = {w: _sigmoid(alpha[w]) for w in worker_ids}
        result = InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            iterations=iterations,
            converged=converged,
            posteriors=posteriors,
        )
        # Expose the learned difficulty estimates for analysis/ablation.
        result.task_difficulty = {  # type: ignore[attr-defined]
            t: 1.0 - math.exp(lb) / (1.0 + math.exp(lb)) for t, lb in log_beta.items()
        }
        return result
