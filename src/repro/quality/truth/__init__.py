"""Truth inference algorithms (quality control, inference side)."""

from repro.quality.truth.base import (
    EM_BACKENDS,
    InferenceResult,
    SparseObservations,
    TruthInference,
    answers_from_platform,
    encode_observations,
    label_space,
    votes_by_task,
    worker_answer_index,
)
from repro.quality.truth.bayesian import BayesianVote
from repro.quality.truth.dawid_skene import DawidSkene
from repro.quality.truth.glad import Glad
from repro.quality.truth.mace import Mace
from repro.quality.truth.majority import MajorityVote, WeightedMajorityVote
from repro.quality.truth.multilabel import MultiLabelVote, set_f1
from repro.quality.truth.numeric import CatdAggregator, MeanAggregator, MedianAggregator
from repro.quality.truth.zencrowd import ZenCrowd

#: Registry of categorical truth-inference methods by short name.
CATEGORICAL_METHODS = {
    "mv": MajorityVote,
    "wmv": WeightedMajorityVote,
    "ds": DawidSkene,
    "zc": ZenCrowd,
    "glad": Glad,
    "bayes": BayesianVote,
    "mace": Mace,
}

#: Registry of numeric aggregation methods by short name.
NUMERIC_METHODS = {
    "mean": MeanAggregator,
    "median": MedianAggregator,
    "catd": CatdAggregator,
}

__all__ = [
    "CATEGORICAL_METHODS",
    "EM_BACKENDS",
    "NUMERIC_METHODS",
    "BayesianVote",
    "CatdAggregator",
    "DawidSkene",
    "Glad",
    "InferenceResult",
    "Mace",
    "MajorityVote",
    "MultiLabelVote",
    "MeanAggregator",
    "MedianAggregator",
    "SparseObservations",
    "TruthInference",
    "WeightedMajorityVote",
    "ZenCrowd",
    "answers_from_platform",
    "encode_observations",
    "label_space",
    "set_f1",
    "votes_by_task",
    "worker_answer_index",
]
