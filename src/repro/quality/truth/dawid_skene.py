"""Dawid–Skene truth inference: EM over per-worker confusion matrices.

The classic (1979) model the tutorial presents as the canonical EM-based
truth-inference method:

* Latent truth ``z_t`` per task over label set L.
* Each worker w has a confusion matrix pi_w[i][j] = P(answer j | truth i).
* E-step: posterior over z_t given current matrices and class priors.
* M-step: re-estimate matrices and priors from the posteriors.

This implementation works on an arbitrary hashable label space (the union
of all observed answers), applies Laplace smoothing to keep matrices
non-degenerate, and initializes from majority voting (the standard warm
start, which also pins the label-permutation ambiguity to the sensible
solution).

The default ``kernel`` backend accumulates both EM steps with
``np.bincount`` over precomputed flat indices
(``worker*K*K + true*K + answered``), avoiding the three dense
``(n_answers, K)`` ``repeat`` temporaries per iteration that the
``legacy`` backend (kept for the differential harness) materializes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    encode_observations,
    resolve_backend,
)


class DawidSkene(TruthInference):
    """EM estimation of worker confusion matrices and task truths.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Convergence threshold on the max change of any task
            posterior between iterations.
        smoothing: Laplace pseudo-count added to confusion-matrix cells.
        backend: ``"kernel"`` (flat-index bincount accumulation) or
            ``"legacy"`` (dense repeat temporaries + ``np.add.at``).
    """

    name = "ds"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        smoothing: float = 0.01,
        backend: str = "kernel",
    ):
        if max_iterations < 1:
            raise InferenceError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.backend = resolve_backend(backend)
        self._warm_quality: dict[str, float] = {}
        self._last_quality: dict[str, float] = {}

    def export_state(self) -> dict[str, Any]:
        """Mean-diagonal worker qualities from the most recent :meth:`infer`."""
        return {"worker_quality": dict(self._last_quality)}

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Bias the initial posteriors by previously estimated worker quality.

        Full confusion matrices are label-space specific, so only the scalar
        qualities carry over: initialization becomes a quality-weighted vote
        instead of plain majority voting.
        """
        self._warm_quality = dict(state.get("worker_quality", {}))

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        obs = encode_observations(answers_by_task)
        n_tasks, n_labels, n_workers = obs.n_tasks, obs.n_labels, obs.n_workers
        obs_task, obs_worker, obs_label = obs.obs_task, obs.obs_worker, obs.obs_label

        # Initialize posteriors from majority voting; with warm-start state,
        # votes are weighted by the previously estimated worker quality.
        vote_weight = np.array(
            [self._warm_quality.get(w, 1.0) for w in obs.worker_ids]
        )
        rows = np.bincount(
            obs.flat_task_label(),
            weights=vote_weight[obs_worker],
            minlength=n_tasks * n_labels,
        ).reshape(n_tasks, n_labels)
        totals = rows.sum(axis=1, keepdims=True)
        posteriors = np.where(totals > 0, rows / np.where(totals > 0, totals, 1.0),
                              1.0 / n_labels)

        if self.backend == "kernel":
            # Flat index per (answer, hypothesized truth) into the
            # (n_workers, K, K) confusion tensor: worker*K*K + true*K + answered.
            conf_flat = (obs_worker * n_labels * n_labels + obs_label)[:, None] + (
                np.arange(n_labels) * n_labels
            )[None, :]
            # Flat index per (answer, hypothesized truth) into (n_tasks, K).
            ll_flat = obs_task[:, None] * n_labels + np.arange(n_labels)[None, :]

        priors = np.full(n_labels, 1.0 / n_labels)
        confusion = np.zeros((n_workers, n_labels, n_labels))
        iterations = 0
        converged = False

        span = em_span(self.name, answers_by_task)
        for iterations in range(1, self.max_iterations + 1):
            # ----- M-step: confusion matrices and class priors. -----
            # Accumulate posterior mass: confusion[w, true, answered] += p(task=true).
            if self.backend == "kernel":
                confusion = self.smoothing + np.bincount(
                    conf_flat.ravel(),
                    weights=posteriors[obs_task].ravel(),
                    minlength=n_workers * n_labels * n_labels,
                ).reshape(n_workers, n_labels, n_labels)
            else:
                confusion.fill(self.smoothing)
                np.add.at(
                    confusion,
                    (obs_worker[:, None].repeat(n_labels, axis=1),
                     np.arange(n_labels)[None, :].repeat(len(obs_task), axis=0),
                     obs_label[:, None].repeat(n_labels, axis=1)),
                    posteriors[obs_task],
                )
            confusion /= confusion.sum(axis=2, keepdims=True)
            priors = posteriors.mean(axis=0)
            priors = np.clip(priors, 1e-9, None)
            priors /= priors.sum()

            # ----- E-step: task posteriors from log-likelihoods. -----
            contrib = np.log(confusion[obs_worker, :, obs_label])
            if self.backend == "kernel":
                log_like = np.log(priors)[None, :] + np.bincount(
                    ll_flat.ravel(),
                    weights=contrib.ravel(),
                    minlength=n_tasks * n_labels,
                ).reshape(n_tasks, n_labels)
            else:
                log_like = np.tile(np.log(priors), (n_tasks, 1))
                np.add.at(log_like, obs_task, contrib)
            log_like -= log_like.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_like)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            delta = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break
        span.set_tag("iterations", iterations)
        span.set_tag("converged", converged)
        span.__exit__(None, None, None)

        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        posterior_maps: dict[str, dict[Any, float]] = {}
        labels = obs.labels
        for t_idx, task_id in enumerate(obs.task_ids):
            best = int(posteriors[t_idx].argmax())
            truths[task_id] = labels[best]
            confidences[task_id] = float(posteriors[t_idx, best])
            posterior_maps[task_id] = {
                labels[j]: float(posteriors[t_idx, j]) for j in range(n_labels)
            }
        worker_quality = {
            w: float(np.trace(confusion[i]) / n_labels)
            for i, w in enumerate(obs.worker_ids)
        }
        self._last_quality = dict(worker_quality)
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            iterations=iterations,
            converged=converged,
            posteriors=posterior_maps,
        )
