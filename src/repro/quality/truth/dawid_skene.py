"""Dawid–Skene truth inference: EM over per-worker confusion matrices.

The classic (1979) model the tutorial presents as the canonical EM-based
truth-inference method:

* Latent truth ``z_t`` per task over label set L.
* Each worker w has a confusion matrix pi_w[i][j] = P(answer j | truth i).
* E-step: posterior over z_t given current matrices and class priors.
* M-step: re-estimate matrices and priors from the posteriors.

This implementation works on an arbitrary hashable label space (the union
of all observed answers), applies Laplace smoothing to keep matrices
non-degenerate, and initializes from majority voting (the standard warm
start, which also pins the label-permutation ambiguity to the sensible
solution).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    label_space,
)


class DawidSkene(TruthInference):
    """EM estimation of worker confusion matrices and task truths.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Convergence threshold on the max change of any task
            posterior between iterations.
        smoothing: Laplace pseudo-count added to confusion-matrix cells.
    """

    name = "ds"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        smoothing: float = 0.01,
    ):
        if max_iterations < 1:
            raise InferenceError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self._warm_quality: dict[str, float] = {}
        self._last_quality: dict[str, float] = {}

    def export_state(self) -> dict[str, Any]:
        """Mean-diagonal worker qualities from the most recent :meth:`infer`."""
        return {"worker_quality": dict(self._last_quality)}

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Bias the initial posteriors by previously estimated worker quality.

        Full confusion matrices are label-space specific, so only the scalar
        qualities carry over: initialization becomes a quality-weighted vote
        instead of plain majority voting.
        """
        self._warm_quality = dict(state.get("worker_quality", {}))

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        labels = label_space(answers_by_task)
        n_labels = len(labels)
        label_index = {label: i for i, label in enumerate(labels)}
        task_ids = list(answers_by_task)
        task_index = {t: i for i, t in enumerate(task_ids)}
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})
        worker_index = {w: i for i, w in enumerate(worker_ids)}
        n_tasks, n_workers = len(task_ids), len(worker_ids)

        # Observation tensor as index lists (sparse): (task, worker, label).
        obs_task, obs_worker, obs_label = [], [], []
        for task_id, answers in answers_by_task.items():
            for a in answers:
                obs_task.append(task_index[task_id])
                obs_worker.append(worker_index[a.worker_id])
                obs_label.append(label_index[a.value])
        obs_task_arr = np.array(obs_task)
        obs_worker_arr = np.array(obs_worker)
        obs_label_arr = np.array(obs_label)

        # Initialize posteriors from majority voting; with warm-start state,
        # votes are weighted by the previously estimated worker quality.
        posteriors = np.full((n_tasks, n_labels), 1.0 / n_labels)
        for task_id, answers in answers_by_task.items():
            row = np.zeros(n_labels)
            for a in answers:
                row[label_index[a.value]] += self._warm_quality.get(a.worker_id, 1.0)
            total = row.sum()
            if total > 0:
                posteriors[task_index[task_id]] = row / total

        priors = np.full(n_labels, 1.0 / n_labels)
        confusion = np.zeros((n_workers, n_labels, n_labels))
        iterations = 0
        converged = False

        span = em_span(self.name, answers_by_task)
        for iterations in range(1, self.max_iterations + 1):
            # ----- M-step: confusion matrices and class priors. -----
            confusion.fill(self.smoothing)
            # Accumulate posterior mass: confusion[w, true, answered] += p(task=true).
            np.add.at(
                confusion,
                (obs_worker_arr[:, None].repeat(n_labels, axis=1),
                 np.arange(n_labels)[None, :].repeat(len(obs_task_arr), axis=0),
                 obs_label_arr[:, None].repeat(n_labels, axis=1)),
                posteriors[obs_task_arr],
            )
            confusion /= confusion.sum(axis=2, keepdims=True)
            priors = posteriors.mean(axis=0)
            priors = np.clip(priors, 1e-9, None)
            priors /= priors.sum()

            # ----- E-step: task posteriors from log-likelihoods. -----
            log_like = np.tile(np.log(priors), (n_tasks, 1))
            contrib = np.log(confusion[obs_worker_arr, :, obs_label_arr])
            np.add.at(log_like, obs_task_arr, contrib)
            log_like -= log_like.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_like)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            delta = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break
        span.set_tag("iterations", iterations)
        span.set_tag("converged", converged)
        span.__exit__(None, None, None)

        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        posterior_maps: dict[str, dict[Any, float]] = {}
        for task_id, t_idx in task_index.items():
            best = int(posteriors[t_idx].argmax())
            truths[task_id] = labels[best]
            confidences[task_id] = float(posteriors[t_idx, best])
            posterior_maps[task_id] = {
                labels[j]: float(posteriors[t_idx, j]) for j in range(n_labels)
            }
        worker_quality = {
            w: float(np.trace(confusion[worker_index[w]]) / n_labels) for w in worker_ids
        }
        self._last_quality = dict(worker_quality)
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            iterations=iterations,
            converged=converged,
            posteriors=posterior_maps,
        )
