"""MACE-style truth inference: explicit spammer modeling.

MACE (Multi-Annotator Competence Estimation, Hovy et al.) models each
worker as either *competent* on an answer (copying the true label) or
*spamming* (drawing from a personal label-preference distribution,
independent of the truth). EM estimates, per worker, the spamming
probability and the spam distribution, plus per-task posteriors.

Where Dawid–Skene spends K^2 parameters per worker, MACE spends K+1 —
making it the method of choice exactly in the contaminated-pool regime the
T2 benchmark sweeps: it separates "usually right" from "answers without
looking" with far less data.

Two execution backends share the model math (see ``EM_BACKENDS``): the
default ``kernel`` backend is batched numpy over the shared sparse
observation encoding with log-space likelihoods (no per-answer 1e-300
clamp, no underflow collapse); ``legacy`` is the original per-answer loop
kept for the differential harness.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    em_iteration,
    em_span,
    encode_observations,
    label_space,
    normalize_log_rows,
    posteriors_to_maps,
    resolve_backend,
    select_truths,
    votes_by_task,
)


class Mace(TruthInference):
    """EM for the competence/spam mixture model.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Convergence threshold on max posterior change.
        prior_competence: Initial P(not spamming) per worker.
        smoothing: Pseudo-count for spam-distribution estimation.
        backend: ``"kernel"`` (vectorized, log-space) or ``"legacy"``.
    """

    name = "mace"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_competence: float = 0.8,
        smoothing: float = 0.1,
        backend: str = "kernel",
    ):
        if not 0.0 < prior_competence < 1.0:
            raise InferenceError("prior_competence must be in (0, 1)")
        if max_iterations < 1:
            raise InferenceError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_competence = prior_competence
        self.smoothing = smoothing
        self.backend = resolve_backend(backend)
        self._warm_competence: dict[str, float] = {}
        self._warm_spam: dict[str, dict[Any, float]] = {}
        self._last_competence: dict[str, float] = {}
        self._last_spam: dict[str, dict[Any, float]] = {}

    def export_state(self) -> dict[str, Any]:
        """Worker competences and spam distributions from the last run.

        JSON-serializable when the label space is (labels become object
        keys); checkpoints embed this under ``state["inference"]``.
        """
        return {
            "competence": dict(self._last_competence),
            "spam_distributions": {
                w: dict(dist) for w, dist in self._last_spam.items()
            },
        }

    def warm_start(self, state: Mapping[str, Any]) -> None:
        """Initialize the next EM run from exported worker parameters."""
        self._warm_competence = dict(state.get("competence", {}))
        self._warm_spam = {
            w: dict(dist) for w, dist in state.get("spam_distributions", {}).items()
        }

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        with em_span(self.name, answers_by_task) as span:
            if self.backend == "kernel":
                result = self._infer_kernel(answers_by_task)
            else:
                result = self._infer_legacy(answers_by_task)
            span.set_tag("iterations", result.iterations)
            span.set_tag("converged", result.converged)
        return result

    def _initial_spam_row(self, labels: Sequence[Any], worker_id: str) -> list[float]:
        """Uniform spam preferences, overridden by warm-start state."""
        n = len(labels)
        warm = self._warm_spam.get(worker_id)
        if not warm:
            return [1.0 / n] * n
        row = [float(warm.get(label, 1.0 / n)) for label in labels]
        total = sum(row)
        return [v / total for v in row] if total > 0 else [1.0 / n] * n

    # ------------------------------------------------------------------ #
    # Vectorized log-space kernel
    # ------------------------------------------------------------------ #

    def _infer_kernel(
        self, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> InferenceResult:
        obs = encode_observations(answers_by_task)
        n_tasks, n_labels = obs.n_tasks, obs.n_labels
        n_workers = obs.n_workers
        competence = np.array(
            [self._warm_competence.get(w, self.prior_competence) for w in obs.worker_ids]
        )
        spam = np.array([self._initial_spam_row(obs.labels, w) for w in obs.worker_ids])

        flat_tl = obs.flat_task_label()
        flat_wl = obs.flat_worker_label()
        answer_count = obs.answers_per_worker()

        # Warm start from vote shares over the global label space.
        posteriors = np.bincount(flat_tl, minlength=n_tasks * n_labels).reshape(
            n_tasks, n_labels
        ) / obs.answers_per_task()[:, None]

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # ---- E-step: task posteriors under the mixture likelihood,
            # accumulated in log space. Each answer contributes
            # log((1-theta) * spam_p) unless it matches the hypothesized
            # truth, where the contribution rises to log(theta + miss).
            theta = competence[obs.obs_worker]
            miss = np.maximum((1.0 - theta) * spam[obs.obs_worker, obs.obs_label], 1e-300)
            match = theta + miss
            log_miss = np.log(miss)
            base = np.bincount(obs.obs_task, weights=log_miss, minlength=n_tasks)
            corr = np.log(match) - log_miss
            log_like = base[:, None] + np.bincount(
                flat_tl, weights=corr, minlength=n_tasks * n_labels
            ).reshape(n_tasks, n_labels)
            new_posteriors = normalize_log_rows(log_like)

            # Per-answer posterior that the worker was competent.
            p_competent = new_posteriors[obs.obs_task, obs.obs_label] * (theta / match)
            competent_mass = np.bincount(
                obs.obs_worker, weights=p_competent, minlength=n_workers
            )
            spam_counts = self.smoothing + np.bincount(
                flat_wl, weights=1.0 - p_competent, minlength=n_workers * n_labels
            ).reshape(n_workers, n_labels)

            # ---- M-step. ----
            competence = (competent_mass + 1.0) / (answer_count + 2.0)
            spam = spam_counts / spam_counts.sum(axis=1, keepdims=True)

            delta = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break

        self._last_competence = {
            w: float(c) for w, c in zip(obs.worker_ids, competence)
        }
        self._last_spam = {
            w: {label: float(p) for label, p in zip(obs.labels, spam[i])}
            for i, w in enumerate(obs.worker_ids)
        }
        posterior_maps = posteriors_to_maps(obs, posteriors)
        truths, confidences = select_truths(posterior_maps)
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=dict(self._last_competence),
            iterations=iterations,
            converged=converged,
            posteriors=posterior_maps,
            spam_distributions={w: dict(d) for w, d in self._last_spam.items()},
        )

    # ------------------------------------------------------------------ #
    # Legacy per-answer loop (linear-space likelihoods)
    # ------------------------------------------------------------------ #

    def _infer_legacy(
        self, answers_by_task: Mapping[str, Sequence[Answer]]
    ) -> InferenceResult:
        labels = label_space(answers_by_task)
        n_labels = len(labels)
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})

        competence = {
            w: self._warm_competence.get(w, self.prior_competence) for w in worker_ids
        }
        spam_dist: dict[str, dict[Any, float]] = {
            w: dict(zip(labels, self._initial_spam_row(labels, w))) for w in worker_ids
        }

        # Warm start from vote shares.
        posteriors: dict[str, dict[Any, float]] = {}
        for task_id, counts in votes_by_task(answers_by_task).items():
            total = sum(counts.values())
            posteriors[task_id] = {
                label: counts.get(label, 0) / total for label in labels
            }

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # ---- E-step: task posteriors under the mixture likelihood. ----
            new_posteriors: dict[str, dict[Any, float]] = {}
            # Also accumulate, per answer, the posterior probability that
            # the worker was competent (needed for the M-step).
            competent_mass = {w: 0.0 for w in worker_ids}
            answer_count = {w: 0 for w in worker_ids}
            spam_counts: dict[str, dict[Any, float]] = {
                w: {label: self.smoothing for label in labels} for w in worker_ids
            }

            for task_id, answers in answers_by_task.items():
                scores: dict[Any, float] = {}
                for true_label in labels:
                    likelihood = 1.0
                    for a in answers:
                        theta = competence[a.worker_id]
                        spam_p = spam_dist[a.worker_id].get(a.value, 1e-9)
                        if a.value == true_label:
                            likelihood *= theta + (1 - theta) * spam_p
                        else:
                            likelihood *= (1 - theta) * spam_p
                        # The per-answer floor that saturates every label's
                        # score on answer-heavy tasks — the underflow bug
                        # the kernel backend fixes.
                        likelihood = max(likelihood, 1e-300)
                    scores[true_label] = likelihood
                total = sum(scores.values())
                if total <= 0:
                    post = {label: 1.0 / n_labels for label in labels}
                else:
                    post = {label: s / total for label, s in scores.items()}
                new_posteriors[task_id] = post

                for a in answers:
                    theta = competence[a.worker_id]
                    spam_p = spam_dist[a.worker_id].get(a.value, 1e-9)
                    # P(competent | answer, truth=answer's label) weighted by
                    # the posterior that the truth equals the answer.
                    p_truth_matches = post.get(a.value, 0.0)
                    if theta + (1 - theta) * spam_p > 0:
                        p_competent_given_match = theta / (theta + (1 - theta) * spam_p)
                    else:
                        p_competent_given_match = 0.0
                    p_competent = p_truth_matches * p_competent_given_match
                    competent_mass[a.worker_id] += p_competent
                    answer_count[a.worker_id] += 1
                    # Spam emissions: answer mass not explained by copying.
                    spam_counts[a.worker_id][a.value] += 1.0 - p_competent

            # ---- M-step. ----
            for w in worker_ids:
                n = answer_count[w]
                if n > 0:
                    # Beta(2,2)-smoothed competence.
                    competence[w] = (competent_mass[w] + 1.0) / (n + 2.0)
                total_spam = sum(spam_counts[w].values())
                spam_dist[w] = {
                    label: spam_counts[w][label] / total_spam for label in labels
                }

            delta = max(
                abs(p - posteriors[task_id].get(label, 0.0))
                for task_id, post in new_posteriors.items()
                for label, p in post.items()
            )
            posteriors = new_posteriors
            em_iteration(self.name, iterations, delta)
            if delta < self.tolerance:
                converged = True
                break

        self._last_competence = dict(competence)
        self._last_spam = {w: dict(d) for w, d in spam_dist.items()}
        truths, confidences = select_truths(posteriors)
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=dict(competence),
            iterations=iterations,
            converged=converged,
            posteriors=posteriors,
            spam_distributions={w: dict(d) for w, d in spam_dist.items()},
        )
