"""MACE-style truth inference: explicit spammer modeling.

MACE (Multi-Annotator Competence Estimation, Hovy et al.) models each
worker as either *competent* on an answer (copying the true label) or
*spamming* (drawing from a personal label-preference distribution,
independent of the truth). EM estimates, per worker, the spamming
probability and the spam distribution, plus per-task posteriors.

Where Dawid–Skene spends K^2 parameters per worker, MACE spends K+1 —
making it the method of choice exactly in the contaminated-pool regime the
T2 benchmark sweeps: it separates "usually right" from "answers without
looking" with far less data.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import (
    InferenceResult,
    TruthInference,
    label_space,
    votes_by_task,
)


class Mace(TruthInference):
    """EM for the competence/spam mixture model.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Convergence threshold on max posterior change.
        prior_competence: Initial P(not spamming) per worker.
        smoothing: Pseudo-count for spam-distribution estimation.
    """

    name = "mace"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_competence: float = 0.8,
        smoothing: float = 0.1,
    ):
        if not 0.0 < prior_competence < 1.0:
            raise InferenceError("prior_competence must be in (0, 1)")
        if max_iterations < 1:
            raise InferenceError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_competence = prior_competence
        self.smoothing = smoothing

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        labels = label_space(answers_by_task)
        n_labels = len(labels)
        worker_ids = sorted({a.worker_id for ans in answers_by_task.values() for a in ans})

        competence = {w: self.prior_competence for w in worker_ids}
        spam_dist: dict[str, dict[Any, float]] = {
            w: {label: 1.0 / n_labels for label in labels} for w in worker_ids
        }

        # Warm start from vote shares.
        posteriors: dict[str, dict[Any, float]] = {}
        for task_id, counts in votes_by_task(answers_by_task).items():
            total = sum(counts.values())
            posteriors[task_id] = {
                label: counts.get(label, 0) / total for label in labels
            }

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # ---- E-step: task posteriors under the mixture likelihood. ----
            new_posteriors: dict[str, dict[Any, float]] = {}
            # Also accumulate, per answer, the posterior probability that
            # the worker was competent (needed for the M-step).
            competent_mass = {w: 0.0 for w in worker_ids}
            answer_count = {w: 0 for w in worker_ids}
            spam_counts: dict[str, dict[Any, float]] = {
                w: {label: self.smoothing for label in labels} for w in worker_ids
            }

            for task_id, answers in answers_by_task.items():
                scores: dict[Any, float] = {}
                for true_label in labels:
                    likelihood = 1.0
                    for a in answers:
                        theta = competence[a.worker_id]
                        spam_p = spam_dist[a.worker_id].get(a.value, 1e-9)
                        if a.value == true_label:
                            likelihood *= theta + (1 - theta) * spam_p
                        else:
                            likelihood *= (1 - theta) * spam_p
                        likelihood = max(likelihood, 1e-300)
                    scores[true_label] = likelihood
                total = sum(scores.values())
                if total <= 0:
                    post = {label: 1.0 / n_labels for label in labels}
                else:
                    post = {label: s / total for label, s in scores.items()}
                new_posteriors[task_id] = post

                for a in answers:
                    theta = competence[a.worker_id]
                    spam_p = spam_dist[a.worker_id].get(a.value, 1e-9)
                    # P(competent | answer, truth=answer's label) weighted by
                    # the posterior that the truth equals the answer.
                    p_truth_matches = post.get(a.value, 0.0)
                    if theta + (1 - theta) * spam_p > 0:
                        p_competent_given_match = theta / (theta + (1 - theta) * spam_p)
                    else:
                        p_competent_given_match = 0.0
                    p_competent = p_truth_matches * p_competent_given_match
                    competent_mass[a.worker_id] += p_competent
                    answer_count[a.worker_id] += 1
                    # Spam emissions: answer mass not explained by copying.
                    spam_counts[a.worker_id][a.value] += 1.0 - p_competent

            # ---- M-step. ----
            for w in worker_ids:
                n = answer_count[w]
                if n > 0:
                    # Beta(2,2)-smoothed competence.
                    competence[w] = (competent_mass[w] + 1.0) / (n + 2.0)
                total_spam = sum(spam_counts[w].values())
                spam_dist[w] = {
                    label: spam_counts[w][label] / total_spam for label in labels
                }

            delta = max(
                abs(p - posteriors[task_id].get(label, 0.0))
                for task_id, post in new_posteriors.items()
                for label, p in post.items()
            )
            posteriors = new_posteriors
            if delta < self.tolerance:
                converged = True
                break

        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        for task_id, post in posteriors.items():
            winner = max(post, key=lambda label: (post[label], repr(label)))
            truths[task_id] = winner
            confidences[task_id] = post[winner]
        result = InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=dict(competence),
            iterations=iterations,
            converged=converged,
            posteriors=posteriors,
        )
        # Expose spam preferences for analysis (not part of the interface).
        result.spam_distributions = spam_dist  # type: ignore[attr-defined]
        return result
