"""Truth inference for MULTI_CHOICE tasks: per-option majority voting.

Multi-label answers are sets of options; aggregating them label-set-wise
(mode over whole sets) wastes evidence, because workers may agree on most
options while disagreeing on one. The standard decomposition votes each
option independently: include an option in the inferred set iff more than
*threshold* of the answers included it.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import InferenceError
from repro.platform.task import Answer
from repro.quality.truth.base import InferenceResult, TruthInference


def set_f1(predicted: frozenset, truth: frozenset) -> float:
    """Set-F1 between a predicted and a true label set (1.0 if both empty)."""
    if not predicted and not truth:
        return 1.0
    tp = len(predicted & truth)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(truth) if truth else 0.0
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


class MultiLabelVote(TruthInference):
    """Per-option majority over set-valued answers.

    Args:
        threshold: Inclusion vote share required (0.5 = strict majority).
    """

    name = "mlv"

    def __init__(self, threshold: float = 0.5):
        if not 0.0 < threshold < 1.0:
            raise InferenceError("threshold must be in (0, 1)")
        self.threshold = threshold

    def infer(self, answers_by_task: Mapping[str, Sequence[Answer]]) -> InferenceResult:
        self._validate(answers_by_task)
        truths: dict[str, Any] = {}
        confidences: dict[str, float] = {}
        posteriors: dict[str, dict[Any, float]] = {}
        agreement: dict[str, list[float]] = {}

        for task_id, answers in answers_by_task.items():
            sets = []
            for a in answers:
                if not isinstance(a.value, (set, frozenset)):
                    raise InferenceError(
                        f"multi-label aggregation needs set answers, got {a.value!r}"
                    )
                sets.append(frozenset(a.value))
            options = frozenset().union(*sets) if sets else frozenset()
            n = len(sets)
            include_share = {
                option: sum(1 for s in sets if option in s) / n for option in options
            }
            inferred = frozenset(
                option for option, share in include_share.items()
                if share > self.threshold
            )
            truths[task_id] = inferred
            posteriors[task_id] = dict(include_share)
            # Confidence: mean decisiveness of the per-option votes.
            if include_share:
                confidences[task_id] = sum(
                    max(share, 1 - share) for share in include_share.values()
                ) / len(include_share)
            else:
                confidences[task_id] = 1.0
            for a, answered in zip(answers, sets):
                agreement.setdefault(a.worker_id, []).append(
                    set_f1(answered, inferred)
                )

        worker_quality = {w: sum(v) / len(v) for w, v in agreement.items()}
        return InferenceResult(
            truths=truths,
            confidences=confidences,
            worker_quality=worker_quality,
            posteriors=posteriors,
        )
