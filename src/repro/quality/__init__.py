"""Quality control: truth inference, task assignment, worker management."""

from repro.quality import assignment, truth, workerqc
from repro.quality.assignment import (
    AssignmentOutcome,
    Cdas,
    Qasca,
    RandomAssignment,
    RoundRobinAssignment,
    run_assignment,
)
from repro.quality.truth import (
    CATEGORICAL_METHODS,
    NUMERIC_METHODS,
    BayesianVote,
    CatdAggregator,
    DawidSkene,
    Glad,
    InferenceResult,
    Mace,
    MajorityVote,
    MeanAggregator,
    MedianAggregator,
    TruthInference,
    WeightedMajorityVote,
    ZenCrowd,
)
from repro.quality.workerqc import (
    GoldInjector,
    eliminate_spammers,
    pool_accuracy_report,
    qualification_test,
)

__all__ = [
    "CATEGORICAL_METHODS",
    "NUMERIC_METHODS",
    "AssignmentOutcome",
    "BayesianVote",
    "CatdAggregator",
    "Cdas",
    "DawidSkene",
    "Glad",
    "GoldInjector",
    "InferenceResult",
    "Mace",
    "MajorityVote",
    "MeanAggregator",
    "MedianAggregator",
    "Qasca",
    "RandomAssignment",
    "RoundRobinAssignment",
    "TruthInference",
    "WeightedMajorityVote",
    "ZenCrowd",
    "assignment",
    "eliminate_spammers",
    "pool_accuracy_report",
    "qualification_test",
    "run_assignment",
    "truth",
    "workerqc",
]
