"""Workers: an answer model plus timing behaviour and history."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.task import Answer, Task
from repro.workers.models import AnswerModel, OneCoinModel

_worker_counter = itertools.count(1)


@dataclass
class LatencyModel:
    """Lognormal task service time plus exponential think/arrival gaps.

    ``mean_seconds`` is the median service time; ``sigma`` the lognormal
    shape. ``arrival_rate`` (tasks/second the worker is willing to start)
    drives the discrete-event simulation in :mod:`repro.platform.events`.
    """

    mean_seconds: float = 30.0
    sigma: float = 0.5
    arrival_rate: float = 1.0 / 45.0

    def __post_init__(self) -> None:
        if self.mean_seconds <= 0 or self.sigma < 0 or self.arrival_rate <= 0:
            raise ConfigurationError("latency parameters must be positive")

    def service_time(self, rng: np.random.Generator) -> float:
        """Sample a lognormal task service time, seconds."""
        return float(rng.lognormal(mean=np.log(self.mean_seconds), sigma=self.sigma))

    def inter_arrival(self, rng: np.random.Generator) -> float:
        """Sample an exponential gap until this worker's next arrival."""
        return float(rng.exponential(1.0 / self.arrival_rate))


@dataclass
class Worker:
    """A simulated crowd worker.

    Attributes:
        worker_id: Unique id.
        model: The :class:`~repro.workers.models.AnswerModel` generating
            answer values.
        latency: Timing behaviour.
        history: All answers this worker has submitted.
    """

    model: AnswerModel = field(default_factory=lambda: OneCoinModel(0.8))
    latency: LatencyModel = field(default_factory=LatencyModel)
    worker_id: str = field(default_factory=lambda: f"w{next(_worker_counter)}")
    history: list[Answer] = field(default_factory=list)
    earned: float = 0.0
    active: bool = True

    def answer_value(self, task: Task, rng: np.random.Generator) -> Any:
        """Produce just the answer value (no bookkeeping)."""
        return self.model.answer(task, rng)

    def submit(
        self,
        task: Task,
        rng: np.random.Generator,
        now: float = 0.0,
    ) -> Answer:
        """Answer *task*, recording history, earnings, and timing."""
        duration = self.latency.service_time(rng)
        value = self.model.answer(task, rng)
        answer = Answer(
            task_id=task.task_id,
            worker_id=self.worker_id,
            value=value,
            submitted_at=now + duration,
            duration=duration,
            reward_paid=task.reward,
        )
        self.history.append(answer)
        self.earned += task.reward
        return answer

    @property
    def tasks_done(self) -> int:
        return len(self.history)

    def has_answered(self, task_id: str) -> bool:
        """True if this worker already answered the given task id."""
        return any(a.task_id == task_id for a in self.history)
