"""Worker accuracy models.

These are the generative counterparts of the task models the tutorial's
quality-control section surveys: the *worker probability* (one-coin) model,
the *confusion matrix* model (Dawid–Skene), the *ability × difficulty* model
(GLAD), and degenerate behaviours (spammers, biased workers). Each model
answers a :class:`~repro.platform.task.Task` given its ground truth; the
inference algorithms then try to recover that truth without peeking.

All randomness flows through the ``numpy.random.Generator`` supplied per
call, so simulations are reproducible end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.task import Task, TaskType


class AnswerModel:
    """Interface: produce an answer value for a task."""

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        """Generate this worker's answer to *task* (may consult task.truth)."""
        raise NotImplementedError

    def _wrong_option(self, task: Task, rng: np.random.Generator) -> Any:
        """Uniformly pick an incorrect option (choice/compare tasks)."""
        wrong = [o for o in task.options if o != task.truth]
        if not wrong:
            return task.truth
        return wrong[int(rng.integers(len(wrong)))]


def _answer_numeric_like(task: Task, noise_sigma: float, rng: np.random.Generator) -> Any:
    """Shared handling of NUMERIC and RATE tasks: truth + Gaussian noise."""
    truth = float(task.truth if task.truth is not None else 0.0)
    value = truth * (1.0 + float(rng.normal(0.0, noise_sigma)))
    if task.task_type is TaskType.RATE:
        low, high = task.payload.get("scale", (1, 5))
        return int(min(high, max(low, round(value))))
    return value


@dataclass
class OneCoinModel(AnswerModel):
    """Worker probability model: correct with probability *accuracy*.

    On error, a uniformly random wrong option is chosen (choice tasks) or a
    corrupted string is produced (FILL tasks). NUMERIC/RATE answers are the
    truth perturbed by relative Gaussian noise scaled by (1 - accuracy).
    """

    accuracy: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ConfigurationError(f"accuracy must be in [0, 1], got {self.accuracy}")

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if task.task_type in (TaskType.NUMERIC, TaskType.RATE):
            return _answer_numeric_like(task, noise_sigma=(1.0 - self.accuracy) * 0.5, rng=rng)
        if task.task_type is TaskType.FILL:
            if rng.random() < self.accuracy:
                return task.truth
            return f"{task.truth}~typo{int(rng.integers(100))}"
        if task.task_type is TaskType.MULTI_CHOICE:
            # Per-option independent inclusion decisions, each correct with
            # probability `accuracy` (the standard multi-label noise model).
            truth = task.truth or frozenset()
            chosen = set()
            for option in task.options:
                should_include = option in truth
                correct = rng.random() < self.accuracy
                if should_include == correct:
                    chosen.add(option)
            return frozenset(chosen)
        if rng.random() < self.accuracy:
            return task.truth
        return self._wrong_option(task, rng)


@dataclass
class ConfusionMatrixModel(AnswerModel):
    """Dawid–Skene generative model: P(answer = j | truth = i) = matrix[i][j].

    Args:
        matrix: Mapping from true label to a mapping of answer label to
            probability; each row must sum to ~1 over the task's options.
    """

    matrix: Mapping[Any, Mapping[Any, float]]

    def __post_init__(self) -> None:
        for true_label, row in self.matrix.items():
            total = sum(row.values())
            if not math.isclose(total, 1.0, abs_tol=1e-6):
                raise ConfigurationError(
                    f"confusion row for {true_label!r} sums to {total}, expected 1.0"
                )

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if task.task_type in (TaskType.NUMERIC, TaskType.RATE):
            return _answer_numeric_like(task, noise_sigma=0.2, rng=rng)
        row = self.matrix.get(task.truth)
        if row is None:
            # Labels outside the matrix: behave like a decent one-coin worker.
            return OneCoinModel(accuracy=0.7).answer(task, rng)
        labels = list(row.keys())
        probs = np.array([row[label] for label in labels], dtype=float)
        probs = probs / probs.sum()
        return labels[int(rng.choice(len(labels), p=probs))]


@dataclass
class GladModel(AnswerModel):
    """GLAD model: P(correct) = sigmoid(ability / difficulty').

    *ability* in (-inf, inf); task difficulty d in [0, 1) maps to
    1/(1-d) >= 1, so harder tasks flatten the worker's advantage exactly as
    in Whitehill et al.'s parameterization (alpha_i * beta_j).
    """

    ability: float = 1.0

    def correctness_probability(self, task: Task) -> float:
        """sigmoid(ability x inverse difficulty) for *task*."""
        inverse_difficulty = 1.0 - task.difficulty  # beta in (0, 1]
        return 1.0 / (1.0 + math.exp(-self.ability * inverse_difficulty))

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if task.task_type in (TaskType.NUMERIC, TaskType.RATE):
            sigma = max(0.05, 0.5 / (1.0 + math.exp(self.ability)))
            return _answer_numeric_like(task, noise_sigma=sigma, rng=rng)
        if task.task_type is TaskType.FILL:
            if rng.random() < self.correctness_probability(task):
                return task.truth
            return f"{task.truth}~typo{int(rng.integers(100))}"
        if rng.random() < self.correctness_probability(task):
            return task.truth
        return self._wrong_option(task, rng)


@dataclass
class SpammerModel(AnswerModel):
    """Uniform random answers — the adversary MV fails against."""

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if task.task_type in (TaskType.NUMERIC,):
            truth = float(task.truth if task.truth is not None else 1.0)
            return float(rng.uniform(0.0, max(2.0 * truth, 1.0)))
        if task.task_type is TaskType.RATE:
            low, high = task.payload.get("scale", (1, 5))
            return int(rng.integers(low, high + 1))
        if task.task_type is TaskType.FILL:
            return f"spam{int(rng.integers(10_000))}"
        if task.task_type is TaskType.MULTI_CHOICE:
            return frozenset(
                option for option in task.options if rng.random() < 0.5
            )
        if task.options:
            return task.options[int(rng.integers(len(task.options)))]
        return None


@dataclass
class BiasedModel(AnswerModel):
    """Always answers *preferred* when it is among the options (sloppy worker).

    Falls back to one-coin behaviour with *fallback_accuracy* otherwise.
    """

    preferred: Any
    bias_probability: float = 0.9
    fallback_accuracy: float = 0.7
    _fallback: OneCoinModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.bias_probability <= 1.0:
            raise ConfigurationError("bias_probability must be in [0, 1]")
        self._fallback = OneCoinModel(accuracy=self.fallback_accuracy)

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if self.preferred in task.options and rng.random() < self.bias_probability:
            return self.preferred
        return self._fallback.answer(task, rng)


@dataclass
class ComparisonNoiseModel(AnswerModel):
    """Bradley–Terry-style comparison worker.

    For COMPARE tasks whose payload includes numeric utilities
    ``left_score`` / ``right_score``, the probability of choosing the truly
    better item is ``sigmoid(sharpness * |gap|)`` — close items are genuinely
    hard, far-apart items are easy. This drives the sort/top-k experiments.

    RATE tasks get deliberately coarse ratings (relative Gaussian noise
    ``rating_noise``): the Qurk observation that people compare far better
    than they rate is what makes the hybrid sort strategy interesting.
    Other task types fall back to one-coin behaviour.
    """

    sharpness: float = 4.0
    fallback_accuracy: float = 0.8
    rating_noise: float = 0.3

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if task.task_type is TaskType.RATE:
            return _answer_numeric_like(task, noise_sigma=self.rating_noise, rng=rng)
        if task.task_type is not TaskType.COMPARE:
            return OneCoinModel(self.fallback_accuracy).answer(task, rng)
        left = task.payload.get("left_score")
        right = task.payload.get("right_score")
        if left is None or right is None:
            return OneCoinModel(self.fallback_accuracy).answer(task, rng)
        gap = abs(float(left) - float(right))
        p_correct = 1.0 / (1.0 + math.exp(-self.sharpness * gap))
        better = "left" if float(left) > float(right) else "right"
        worse = "right" if better == "left" else "left"
        return better if rng.random() < p_correct else worse


@dataclass
class CollectorModel(AnswerModel):
    """Open-world contributor for COLLECT tasks.

    The worker "knows" a personal subset of the universe (assigned by the
    dataset generator, stored in the task payload under
    ``known_items[worker_id]`` or passed via :meth:`bind_knowledge`), and
    contributes a uniformly random known item each time. Duplicate
    contributions across workers are exactly what species-estimation
    coverage analysis consumes.
    """

    known_items: tuple[Any, ...] = ()

    def bind_knowledge(self, items: tuple[Any, ...]) -> None:
        """Set the items this collector can contribute."""
        self.known_items = tuple(items)

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        if task.task_type is not TaskType.COLLECT:
            return OneCoinModel(0.8).answer(task, rng)
        if not self.known_items:
            return None
        return self.known_items[int(rng.integers(len(self.known_items)))]


@dataclass
class DiverseSkillsModel(AnswerModel):
    """Per-domain accuracy (the tutorial's *diverse skills* worker model).

    A worker may be expert at bird photos and hopeless at legal text. Tasks
    advertise their domain via ``payload['domain']``; the model answers
    with that domain's accuracy, falling back to *default_accuracy* for
    unknown domains. Domain-aware assignment
    (:class:`repro.quality.assignment.domain.DomainAwareAssignment`)
    exploits exactly this structure.
    """

    skills: Mapping[str, float] = field(default_factory=dict)
    default_accuracy: float = 0.6

    def __post_init__(self) -> None:
        for domain, accuracy in self.skills.items():
            if not 0.0 <= accuracy <= 1.0:
                raise ConfigurationError(
                    f"accuracy for domain {domain!r} must be in [0, 1]"
                )
        if not 0.0 <= self.default_accuracy <= 1.0:
            raise ConfigurationError("default_accuracy must be in [0, 1]")

    def accuracy_for(self, task: Task) -> float:
        """Accuracy this worker has in the task's domain."""
        domain = task.payload.get("domain")
        return self.skills.get(domain, self.default_accuracy)

    def answer(self, task: Task, rng: np.random.Generator) -> Any:
        return OneCoinModel(self.accuracy_for(task)).answer(task, rng)
