"""Worker pools: populations of simulated workers with factory presets.

The presets correspond to the worker populations the tutorial's experiments
and the surveyed papers assume: homogeneous pools, heterogeneous-quality
pools, pools contaminated with spammers, and GLAD-style ability spectra.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, NoWorkersAvailableError
from repro.workers.models import (
    AnswerModel,
    ComparisonNoiseModel,
    ConfusionMatrixModel,
    GladModel,
    OneCoinModel,
    SpammerModel,
)
from repro.workers.worker import Worker


class WorkerPool:
    """An ordered collection of workers with sampling helpers."""

    def __init__(self, workers: Sequence[Worker], seed: int | None = None):
        if not workers:
            raise ConfigurationError("a worker pool requires at least one worker")
        self._workers = list(workers)
        self._by_id = {w.worker_id: w for w in self._workers}
        if len(self._by_id) != len(self._workers):
            raise ConfigurationError("duplicate worker ids in pool")
        self.rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __contains__(self, worker_id: object) -> bool:
        return worker_id in self._by_id

    def __repr__(self) -> str:
        return f"WorkerPool<{len(self)} workers>"

    @property
    def workers(self) -> list[Worker]:
        return list(self._workers)

    @property
    def active_workers(self) -> list[Worker]:
        return [w for w in self._workers if w.active]

    def worker(self, worker_id: str) -> Worker:
        """Look up a worker by id (raises if absent)."""
        try:
            return self._by_id[worker_id]
        except KeyError:
            raise NoWorkersAvailableError(f"no worker {worker_id!r} in pool") from None

    def deactivate(self, worker_id: str) -> None:
        """Eliminate a worker (qualification failure, spammer detection)."""
        self.worker(worker_id).active = False

    def add_worker(self, worker: Worker) -> Worker:
        """Admit a new worker mid-run (churn arrivals, pool maintenance)."""
        if worker.worker_id in self._by_id:
            raise ConfigurationError(f"worker {worker.worker_id!r} already in pool")
        self._workers.append(worker)
        self._by_id[worker.worker_id] = worker
        return worker

    def sample(self, k: int, exclude: set[str] = frozenset()) -> list[Worker]:
        """Sample *k* distinct active workers uniformly, excluding ids in *exclude*.

        Raises NoWorkersAvailableError when fewer than *k* are eligible.
        """
        eligible = [w for w in self._workers if w.active and w.worker_id not in exclude]
        if len(eligible) < k:
            raise NoWorkersAvailableError(
                f"requested {k} workers but only {len(eligible)} eligible"
            )
        idx = self.rng.choice(len(eligible), size=k, replace=False)
        return [eligible[i] for i in sorted(int(i) for i in idx)]

    def round_robin(self) -> Iterator[Worker]:
        """Endless round-robin over active workers (arrival order proxy)."""
        while True:
            actives = self.active_workers
            if not actives:
                raise NoWorkersAvailableError("no active workers remain")
            for worker in actives:
                if worker.active:
                    yield worker

    def arrivals(self, horizon: float) -> list[tuple[float, Worker]]:
        """Simulate Poisson arrivals of active workers up to *horizon* seconds.

        Returns (time, worker) pairs sorted by time — the raw material for
        the latency experiments.
        """
        events: list[tuple[float, Worker]] = []
        for worker in self.active_workers:
            t = 0.0
            while True:
                t += worker.latency.inter_arrival(self.rng)
                if t > horizon:
                    break
                events.append((t, worker))
        events.sort(key=lambda pair: pair[0])
        return events

    # ------------------------------------------------------------------ #
    # Factory presets
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, n: int, accuracy: float = 0.8, seed: int | None = None) -> "WorkerPool":
        """Homogeneous one-coin pool."""
        return cls([Worker(model=OneCoinModel(accuracy)) for _ in range(n)], seed=seed)

    @classmethod
    def heterogeneous(
        cls,
        n: int,
        accuracy_low: float = 0.55,
        accuracy_high: float = 0.95,
        seed: int | None = None,
    ) -> "WorkerPool":
        """One-coin pool with accuracies spread uniformly over a range."""
        rng = np.random.default_rng(seed)
        accs = rng.uniform(accuracy_low, accuracy_high, size=n)
        return cls([Worker(model=OneCoinModel(float(a))) for a in accs], seed=seed)

    @classmethod
    def with_spammers(
        cls,
        n: int,
        spammer_fraction: float,
        good_accuracy: float = 0.85,
        seed: int | None = None,
    ) -> "WorkerPool":
        """Pool of reliable workers contaminated with uniform spammers."""
        if not 0.0 <= spammer_fraction <= 1.0:
            raise ConfigurationError("spammer_fraction must be in [0, 1]")
        n_spam = int(round(n * spammer_fraction))
        if spammer_fraction > 0.0 and n >= 1 and n_spam == 0:
            # A nonzero contamination request must contaminate: round(0.1*4)
            # would otherwise silently yield a clean pool.
            n_spam = 1
        workers: list[Worker] = []
        for i in range(n):
            model: AnswerModel
            if i < n_spam:
                model = SpammerModel()
            else:
                model = OneCoinModel(good_accuracy)
            workers.append(Worker(model=model))
        return cls(workers, seed=seed)

    @classmethod
    def glad_spectrum(
        cls,
        n: int,
        ability_mean: float = 1.5,
        ability_std: float = 1.0,
        seed: int | None = None,
    ) -> "WorkerPool":
        """Pool with normally distributed GLAD abilities."""
        rng = np.random.default_rng(seed)
        abilities = rng.normal(ability_mean, ability_std, size=n)
        return cls([Worker(model=GladModel(float(a))) for a in abilities], seed=seed)

    @classmethod
    def comparison_pool(
        cls,
        n: int,
        sharpness: float = 4.0,
        seed: int | None = None,
    ) -> "WorkerPool":
        """Pool of Bradley–Terry comparison workers for sort/top-k."""
        return cls([Worker(model=ComparisonNoiseModel(sharpness)) for _ in range(n)], seed=seed)

    @classmethod
    def confusion_pool(
        cls,
        n: int,
        matrix_factory: Callable[[np.random.Generator], ConfusionMatrixModel],
        seed: int | None = None,
    ) -> "WorkerPool":
        """Pool whose per-worker confusion matrices come from a factory."""
        rng = np.random.default_rng(seed)
        return cls([Worker(model=matrix_factory(rng)) for _ in range(n)], seed=seed)


def true_accuracy(worker: Worker) -> float | None:
    """Best-effort readout of a worker's generative accuracy (for reports)."""
    model = worker.model
    if isinstance(model, OneCoinModel):
        return model.accuracy
    if isinstance(model, SpammerModel):
        return None
    if isinstance(model, GladModel):
        # Accuracy on a difficulty-0 task.
        return 1.0 / (1.0 + np.exp(-model.ability))
    return None
