"""Simulated worker substrate: answer models, workers, pools."""

from repro.workers.models import (
    AnswerModel,
    BiasedModel,
    CollectorModel,
    ComparisonNoiseModel,
    ConfusionMatrixModel,
    DiverseSkillsModel,
    GladModel,
    OneCoinModel,
    SpammerModel,
)
from repro.workers.pool import WorkerPool, true_accuracy
from repro.workers.worker import LatencyModel, Worker

__all__ = [
    "AnswerModel",
    "BiasedModel",
    "CollectorModel",
    "ComparisonNoiseModel",
    "ConfusionMatrixModel",
    "DiverseSkillsModel",
    "GladModel",
    "LatencyModel",
    "OneCoinModel",
    "SpammerModel",
    "Worker",
    "WorkerPool",
    "true_accuracy",
]
