"""Hybrid human/machine labeling: crowd-in-the-loop active learning.

The tutorial's hybrid pipelines route items between a machine model and
the crowd: the model labels what it is confident about, the crowd labels
what it is not, and every crowd label makes the model better. This module
implements the canonical loop:

1. seed: crowd-label a small random batch (redundancy + truth inference);
2. train the model on everything crowd-labeled so far;
3. score the unlabeled pool; pick the lowest-margin (most uncertain) batch;
4. crowd-label that batch; repeat while budget remains;
5. final output = crowd labels where available, model predictions elsewhere.

The F9 benchmark compares this uncertainty routing against random routing
at the same crowd budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hybrid.naive_bayes import NaiveBayesText
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference


@dataclass
class ActiveLearningResult:
    """Outcome of a crowd-in-the-loop labeling run."""

    crowd_labels: dict[int, Any]             # item index -> inferred label
    final_labels: list[Any]                  # full dataset (crowd or model)
    model: NaiveBayesText
    crowd_questions: int
    cost: float
    trajectory: list[tuple[int, float]] = field(default_factory=list)
    # (crowd-labeled count, heldout model accuracy) checkpoints

    def accuracy_against(self, truth: Sequence[Any]) -> float:
        """Fraction of final labels matching the ground-truth list."""
        hits = sum(1 for i, label in enumerate(self.final_labels) if label == truth[i])
        return hits / len(truth) if truth else 0.0


class ActiveLearner:
    """Uncertainty-routed hybrid labeler.

    Args:
        platform: Marketplace for crowd labels.
        categories: The label set.
        truth_fn: Item -> true label (drives simulated workers only).
        redundancy: Votes per crowd-labeled item.
        inference: Vote aggregation.
        batch_size: Items crowd-labeled per round.
        selection: ``"uncertainty"`` (lowest model margin first) or
            ``"random"`` (the passive baseline).
        seed: RNG seed for seeding/random selection.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        categories: Sequence[Any],
        truth_fn: Callable[[str], Any],
        redundancy: int = 3,
        inference: TruthInference | None = None,
        batch_size: int = 10,
        selection: str = "uncertainty",
        seed: int | None = None,
    ):
        if len(categories) < 2:
            raise ConfigurationError("need at least two categories")
        if selection not in ("uncertainty", "random"):
            raise ConfigurationError("selection must be 'uncertainty' or 'random'")
        if batch_size < 1 or redundancy < 1:
            raise ConfigurationError("batch_size and redundancy must be >= 1")
        self.platform = platform
        self.categories = tuple(categories)
        self.truth_fn = truth_fn
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.batch_size = batch_size
        self.selection = selection
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #

    def _crowd_label(self, items: Sequence[str], indices: list[int]) -> dict[int, Any]:
        tasks = []
        index_of_task: dict[str, int] = {}
        for i in indices:
            task = Task(
                TaskType.SINGLE_CHOICE,
                question=f"Label this text: {items[i]}",
                options=self.categories,
                truth=self.truth_fn(items[i]),
            )
            tasks.append(task)
            index_of_task[task.task_id] = i
        collected = self.platform.collect(tasks, redundancy=self.redundancy)
        inferred = self.inference.infer(collected)
        return {index_of_task[t]: label for t, label in inferred.truths.items()}

    def _pick_batch(
        self,
        items: Sequence[str],
        unlabeled: list[int],
        model: NaiveBayesText | None,
    ) -> list[int]:
        take = min(self.batch_size, len(unlabeled))
        if self.selection == "random" or model is None or model.n_documents == 0:
            chosen = self.rng.choice(len(unlabeled), size=take, replace=False)
            return [unlabeled[int(i)] for i in chosen]
        by_margin = sorted(unlabeled, key=lambda i: model.margin(items[i]))
        return by_margin[:take]

    def run(
        self,
        items: Sequence[str],
        label_budget: int,
        heldout: tuple[Sequence[str], Sequence[Any]] | None = None,
    ) -> ActiveLearningResult:
        """Label *items* with at most *label_budget* crowd-labeled items.

        *heldout* (documents, labels) enables the accuracy trajectory.
        """
        if label_budget < 1:
            raise ConfigurationError("label_budget must be >= 1")
        before = self.platform.stats.cost_spent
        crowd_labels: dict[int, Any] = {}
        model = NaiveBayesText()
        trajectory: list[tuple[int, float]] = []
        questions = 0

        unlabeled = list(range(len(items)))
        while crowd_labels.keys() != set(range(len(items))) and len(crowd_labels) < label_budget:
            remaining_budget = label_budget - len(crowd_labels)
            batch = self._pick_batch(items, unlabeled, model)[:remaining_budget]
            if not batch:
                break
            new_labels = self._crowd_label(items, batch)
            questions += len(batch) * self.redundancy
            crowd_labels.update(new_labels)
            unlabeled = [i for i in unlabeled if i not in crowd_labels]
            for i, label in new_labels.items():
                model.partial_fit(items[i], label)
            if heldout is not None:
                trajectory.append(
                    (len(crowd_labels), model.accuracy(heldout[0], heldout[1]))
                )

        final = [
            crowd_labels[i] if i in crowd_labels else model.predict(items[i])
            for i in range(len(items))
        ]
        return ActiveLearningResult(
            crowd_labels=crowd_labels,
            final_labels=final,
            model=model,
            crowd_questions=questions,
            cost=self.platform.stats.cost_spent - before,
            trajectory=trajectory,
        )
