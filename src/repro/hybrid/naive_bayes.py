"""Multinomial naive Bayes over token counts, from scratch.

The machine half of the hybrid human/machine pipelines the tutorial
surveys: cheap, incremental, and well-calibrated enough that its posterior
margins are a usable routing signal (send what the model is unsure about
to the crowd). No external ML dependency — ~100 lines of counting.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Any, Sequence

from repro.cost.similarity import tokenize
from repro.errors import ConfigurationError


class NaiveBayesText:
    """Multinomial NB with Laplace smoothing over word tokens.

    Args:
        alpha: Laplace pseudo-count.
    """

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.alpha = alpha
        self._class_docs: Counter = Counter()
        self._class_tokens: dict[Any, Counter] = defaultdict(Counter)
        self._class_total_tokens: Counter = Counter()
        self._vocabulary: set[str] = set()

    # ------------------------------------------------------------------ #

    @property
    def classes(self) -> list[Any]:
        return sorted(self._class_docs, key=repr)

    @property
    def n_documents(self) -> int:
        return sum(self._class_docs.values())

    def fit(self, documents: Sequence[str], labels: Sequence[Any]) -> "NaiveBayesText":
        """Reset and train on the given corpus."""
        if len(documents) != len(labels):
            raise ConfigurationError("documents and labels must align")
        self._class_docs = Counter()
        self._class_tokens = defaultdict(Counter)
        self._class_total_tokens = Counter()
        self._vocabulary = set()
        for document, label in zip(documents, labels):
            self.partial_fit(document, label)
        return self

    def partial_fit(self, document: str, label: Any) -> None:
        """Incrementally absorb one labeled document."""
        tokens = tokenize(document)
        self._class_docs[label] += 1
        self._class_tokens[label].update(tokens)
        self._class_total_tokens[label] += len(tokens)
        self._vocabulary.update(tokens)

    # ------------------------------------------------------------------ #

    def predict_log_proba(self, document: str) -> dict[Any, float]:
        """Unnormalized class log-posteriors (log prior + log likelihood)."""
        if not self._class_docs:
            raise ConfigurationError("model has not been trained")
        tokens = tokenize(document)
        total_docs = self.n_documents
        vocab_size = max(1, len(self._vocabulary))
        scores: dict[Any, float] = {}
        for label in self._class_docs:
            log_score = math.log(self._class_docs[label] / total_docs)
            denominator = self._class_total_tokens[label] + self.alpha * vocab_size
            token_counts = self._class_tokens[label]
            for token in tokens:
                log_score += math.log(
                    (token_counts.get(token, 0) + self.alpha) / denominator
                )
            scores[label] = log_score
        return scores

    def predict_proba(self, document: str) -> dict[Any, float]:
        """Normalized class posteriors."""
        log_scores = self.predict_log_proba(document)
        peak = max(log_scores.values())
        exp_scores = {label: math.exp(s - peak) for label, s in log_scores.items()}
        total = sum(exp_scores.values())
        return {label: s / total for label, s in exp_scores.items()}

    def predict(self, document: str) -> Any:
        """Most probable class for *document*."""
        proba = self.predict_proba(document)
        return max(proba, key=lambda label: (proba[label], repr(label)))

    def margin(self, document: str) -> float:
        """Top-1 minus top-2 posterior: the uncertainty routing signal."""
        proba = sorted(self.predict_proba(document).values(), reverse=True)
        if len(proba) < 2:
            return 1.0
        return proba[0] - proba[1]

    def accuracy(self, documents: Sequence[str], labels: Sequence[Any]) -> float:
        """Fraction of documents classified correctly."""
        if not documents:
            raise ConfigurationError("empty evaluation set")
        hits = sum(1 for d, y in zip(documents, labels) if self.predict(d) == y)
        return hits / len(documents)
