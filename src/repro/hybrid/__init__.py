"""Hybrid human/machine pipelines: classifier + crowd-in-the-loop labeling."""

from repro.hybrid.active import ActiveLearner, ActiveLearningResult
from repro.hybrid.naive_bayes import NaiveBayesText

__all__ = ["ActiveLearner", "ActiveLearningResult", "NaiveBayesText"]
