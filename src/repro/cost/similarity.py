"""String similarity measures (machine side of the prune-then-verify pattern).

Implemented from scratch — no external text libraries:

* :func:`jaccard_tokens` — token-set Jaccard (the CrowdER default).
* :func:`jaccard_ngrams` — character n-gram Jaccard, robust to word order.
* :func:`edit_distance` / :func:`edit_similarity` — Levenshtein with the
  standard two-row dynamic program.
* :func:`cosine_tokens` — TF cosine over token multisets.
"""

from __future__ import annotations

import math
import re
from collections import Counter

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens (alphanumeric runs)."""
    return _TOKEN_RE.findall(text.lower())


def jaccard_tokens(a: str, b: str) -> float:
    """Token-set Jaccard similarity in [0, 1]."""
    sa, sb = set(tokenize(a)), set(tokenize(b))
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def ngrams(text: str, n: int = 3) -> set[str]:
    """Character n-grams of the lowercased, space-normalized string."""
    normalized = " ".join(tokenize(text))
    if len(normalized) < n:
        return {normalized} if normalized else set()
    return {normalized[i : i + n] for i in range(len(normalized) - n + 1)}


def jaccard_ngrams(a: str, b: str, n: int = 3) -> float:
    """Character n-gram Jaccard similarity in [0, 1]."""
    ga, gb = ngrams(a, n), ngrams(b, n)
    if not ga and not gb:
        return 1.0
    if not ga or not gb:
        return 0.0
    return len(ga & gb) / len(ga | gb)


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance via the two-row dynamic program (O(len a * len b))."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the inner row short
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def edit_similarity(a: str, b: str) -> float:
    """1 - normalized Levenshtein distance, in [0, 1]."""
    if not a and not b:
        return 1.0
    return 1.0 - edit_distance(a, b) / max(len(a), len(b))


def cosine_tokens(a: str, b: str) -> float:
    """Term-frequency cosine similarity in [0, 1]."""
    ca, cb = Counter(tokenize(a)), Counter(tokenize(b))
    if not ca or not cb:
        return 1.0 if (not ca and not cb) else 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    norm = math.sqrt(sum(v * v for v in ca.values())) * math.sqrt(
        sum(v * v for v in cb.values())
    )
    if norm <= 0:
        return 0.0
    # Clamp: floating-point rounding can push identical vectors past 1.0.
    return min(1.0, dot / norm)


SIMILARITY_FUNCTIONS = {
    "jaccard": jaccard_tokens,
    "ngram": jaccard_ngrams,
    "edit": edit_similarity,
    "cosine": cosine_tokens,
}
