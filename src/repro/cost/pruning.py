"""Machine-based candidate pruning (the CrowdER hybrid pattern).

Asking the crowd to compare all O(n^2) record pairs is the canonical cost
blow-up in crowdsourced entity resolution. The surveyed fix: compute a cheap
machine similarity for every pair, send only pairs above a threshold tau to
the crowd, and auto-reject the rest. Lowering tau raises recall and cost;
raising it saves money but misses matches — exactly the trade-off the
benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cost.similarity import SIMILARITY_FUNCTIONS
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CandidatePair:
    """A record pair surviving machine pruning."""

    left_index: int
    right_index: int
    similarity: float


@dataclass
class PruningReport:
    """Accounting for a pruning pass."""

    total_pairs: int
    surviving_pairs: int
    threshold: float

    @property
    def pruned_fraction(self) -> float:
        if self.total_pairs == 0:
            return 0.0
        return 1.0 - self.surviving_pairs / self.total_pairs


class SimilarityPruner:
    """Generate candidate pairs above a similarity threshold.

    Args:
        threshold: tau in [0, 1]; pairs with similarity < tau are pruned.
        similarity: A callable ``(a, b) -> float`` or the name of one of the
            built-in measures in :mod:`repro.cost.similarity`.
        key: Extracts the comparable string from a record (defaults to str).
    """

    def __init__(
        self,
        threshold: float = 0.3,
        similarity: str | Callable[[str, str], float] = "jaccard",
        key: Callable[[Any], str] = str,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in [0, 1], got {threshold}")
        if isinstance(similarity, str):
            try:
                similarity = SIMILARITY_FUNCTIONS[similarity]
            except KeyError:
                raise ConfigurationError(
                    f"unknown similarity {similarity!r}; "
                    f"available: {sorted(SIMILARITY_FUNCTIONS)}"
                ) from None
        self.threshold = threshold
        self.similarity = similarity
        self.key = key

    def candidate_pairs(
        self, records: Sequence[Any]
    ) -> tuple[list[CandidatePair], PruningReport]:
        """All-pairs similarity scan; returns survivors and the report."""
        survivors: list[CandidatePair] = []
        n = len(records)
        keys = [self.key(r) for r in records]
        total = n * (n - 1) // 2
        for i in range(n):
            for j in range(i + 1, n):
                sim = self.similarity(keys[i], keys[j])
                if sim >= self.threshold:
                    survivors.append(CandidatePair(i, j, sim))
        survivors.sort(key=lambda p: -p.similarity)
        return survivors, PruningReport(total, len(survivors), self.threshold)

    def cross_pairs(
        self, left: Sequence[Any], right: Sequence[Any]
    ) -> tuple[list[CandidatePair], PruningReport]:
        """Bipartite variant for joins between two relations."""
        survivors: list[CandidatePair] = []
        left_keys = [self.key(r) for r in left]
        right_keys = [self.key(r) for r in right]
        for i, ka in enumerate(left_keys):
            for j, kb in enumerate(right_keys):
                sim = self.similarity(ka, kb)
                if sim >= self.threshold:
                    survivors.append(CandidatePair(i, j, sim))
        survivors.sort(key=lambda p: -p.similarity)
        report = PruningReport(len(left) * len(right), len(survivors), self.threshold)
        return survivors, report


def pruning_recall(
    survivors: Sequence[CandidatePair],
    true_pairs: set[tuple[int, int]],
) -> float:
    """Fraction of true matching pairs that survived pruning.

    Pairs are normalized to (min, max) index order before comparison.
    Returns 1.0 when there are no true pairs (nothing to miss).
    """
    if not true_pairs:
        return 1.0
    normalized_truth = {(min(a, b), max(a, b)) for a, b in true_pairs}
    survived = {
        (min(p.left_index, p.right_index), max(p.left_index, p.right_index))
        for p in survivors
    }
    return len(normalized_truth & survived) / len(normalized_truth)
