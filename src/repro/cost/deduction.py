"""Answer deduction: infer answers from transitivity instead of buying them.

The tutorial's cost-control section highlights two deduction opportunities:

* **Entity resolution** (:class:`TransitiveResolver`): match is an
  equivalence relation — ``a=b and b=c implies a=c`` and ``a=b and b!=c
  implies a!=c``. Asking pairs in descending machine-similarity order and
  deducing whatever transitivity already settles is the classic
  Wang et al. strategy; the benchmarks measure how many crowd questions it
  saves.

* **Comparisons** (:class:`ComparisonDeducer`): "ranks higher" is a strict
  order — ``a>b and b>c implies a>c``. Maintaining the transitive closure
  of asked comparisons lets sort/top-k operators skip implied questions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

from repro.errors import DeductionError


class _UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Hashable:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def same(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)


class TransitiveResolver:
    """Incremental equivalence reasoning over match/non-match evidence.

    ``record_match`` / ``record_nonmatch`` add crowd-confirmed evidence;
    :meth:`infer` answers "same entity?" from the closure — True, False, or
    None (must ask). Adding evidence that contradicts the closure raises
    :class:`~repro.errors.DeductionError` in strict mode (default) or is
    ignored with a recorded conflict otherwise (real crowds are noisy).
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._clusters = _UnionFind()
        # Non-match edges between cluster roots; kept root-normalized lazily.
        self._nonmatch: dict[Hashable, set[Hashable]] = defaultdict(set)
        self.conflicts: list[tuple[Hashable, Hashable, str]] = []
        self.matches_recorded = 0
        self.nonmatches_recorded = 0

    # ------------------------------------------------------------------ #
    # Evidence
    # ------------------------------------------------------------------ #

    def _roots_nonmatch(self, ra: Hashable, rb: Hashable) -> bool:
        return rb in self._nonmatch.get(ra, ()) or ra in self._nonmatch.get(rb, ())

    def record_match(self, a: Hashable, b: Hashable) -> None:
        """Record crowd-confirmed 'same entity' evidence for (a, b)."""
        ra, rb = self._clusters.find(a), self._clusters.find(b)
        if ra == rb:
            return
        if self._roots_nonmatch(ra, rb):
            if self.strict:
                raise DeductionError(
                    f"match({a!r}, {b!r}) contradicts a recorded non-match"
                )
            self.conflicts.append((a, b, "match_vs_nonmatch"))
            return
        new_root = self._clusters.union(ra, rb)
        old_root = rb if new_root == ra else ra
        # Migrate non-match edges from the absorbed root.
        for other in self._nonmatch.pop(old_root, set()):
            self._nonmatch[new_root].add(other)
            self._nonmatch[other].discard(old_root)
            self._nonmatch[other].add(new_root)
        self.matches_recorded += 1

    def record_nonmatch(self, a: Hashable, b: Hashable) -> None:
        """Record crowd-confirmed 'different entities' evidence for (a, b)."""
        ra, rb = self._clusters.find(a), self._clusters.find(b)
        if ra == rb:
            if self.strict:
                raise DeductionError(
                    f"nonmatch({a!r}, {b!r}) contradicts the match closure"
                )
            self.conflicts.append((a, b, "nonmatch_vs_match"))
            return
        self._nonmatch[ra].add(rb)
        self._nonmatch[rb].add(ra)
        self.nonmatches_recorded += 1

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def infer(self, a: Hashable, b: Hashable) -> bool | None:
        """True/False if deducible from the closure, else None."""
        ra, rb = self._clusters.find(a), self._clusters.find(b)
        if ra == rb:
            return True
        if self._roots_nonmatch(ra, rb):
            return False
        return None

    def clusters(self, items: Iterable[Hashable]) -> list[set[Hashable]]:
        """Partition *items* into current equivalence classes."""
        groups: dict[Hashable, set[Hashable]] = defaultdict(set)
        for item in items:
            groups[self._clusters.find(item)].add(item)
        return list(groups.values())


def resolve_pairs(
    pairs: Sequence[tuple[Hashable, Hashable]],
    oracle: Callable[[Hashable, Hashable], bool],
    resolver: TransitiveResolver | None = None,
) -> tuple[dict[tuple[Hashable, Hashable], bool], int]:
    """Label every pair, asking *oracle* only when deduction cannot answer.

    *pairs* should be pre-sorted (descending machine similarity maximizes
    deduction in practice: likely-matches asked first seed large clusters).
    Returns (labels, questions_asked). The oracle stands in for a
    crowd-with-aggregation pipeline; see
    :class:`repro.operators.join.CrowdJoin` for the full stack.
    """
    resolver = resolver or TransitiveResolver(strict=False)
    labels: dict[tuple[Hashable, Hashable], bool] = {}
    asked = 0
    for a, b in pairs:
        deduced = resolver.infer(a, b)
        if deduced is None:
            verdict = bool(oracle(a, b))
            asked += 1
            if verdict:
                resolver.record_match(a, b)
            else:
                resolver.record_nonmatch(a, b)
            labels[(a, b)] = verdict
        else:
            labels[(a, b)] = deduced
    return labels, asked


class ComparisonDeducer:
    """Transitive closure over strict-order evidence (a ranks above b).

    ``record(a, b)`` asserts a > b. :meth:`infer` answers "a > b?" with
    True/False/None by reachability. Cycles (contradictions) raise in
    strict mode. Reachability is computed by incremental closure: small
    (hundreds of items) sort frontiers are the intended scale.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._above: dict[Hashable, set[Hashable]] = defaultdict(set)  # a -> {all below a}
        self._below: dict[Hashable, set[Hashable]] = defaultdict(set)
        self.conflicts: list[tuple[Hashable, Hashable]] = []
        self.recorded = 0

    def record(self, winner: Hashable, loser: Hashable) -> None:
        """Record crowd-confirmed evidence that *winner* ranks above *loser*."""
        if winner == loser:
            raise DeductionError("an item cannot outrank itself")
        if winner in self._above.get(loser, ()):  # loser > winner already known
            if self.strict:
                raise DeductionError(
                    f"{winner!r} > {loser!r} contradicts the recorded order"
                )
            self.conflicts.append((winner, loser))
            return
        if loser in self._above.get(winner, ()):
            return  # already known
        # New edge: everything >= winner is above everything <= loser.
        uppers = {winner} | self._below.get(winner, set())
        lowers = {loser} | self._above.get(loser, set())
        for up in uppers:
            self._above[up] |= lowers
        for low in lowers:
            self._below[low] |= uppers
        self.recorded += 1

    def infer(self, a: Hashable, b: Hashable) -> bool | None:
        """True/False if 'a above b' follows from the closure, else None."""
        if b in self._above.get(a, ()):
            return True
        if a in self._above.get(b, ()):
            return False
        return None

    def known_below(self, item: Hashable) -> set[Hashable]:
        """Items the closure places strictly below *item*."""
        return set(self._above.get(item, ()))

    def known_above(self, item: Hashable) -> set[Hashable]:
        """Items the closure places strictly above *item*."""
        return set(self._below.get(item, ()))
