"""Sampling-based crowd-powered estimation.

Crowdsourcing an aggregate over a large population (how many photos show a
woman? what fraction of records are mislabeled?) does not require labeling
everything: label a random sample and extrapolate, with confidence intervals
from standard survey statistics. This is the tutorial's "crowd-powered
query processing on samples" technique, and the substrate for the COUNT
operator (:mod:`repro.operators.count`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a symmetric normal-approximation interval."""

    value: float
    stderr: float
    confidence: float
    sample_size: int

    @property
    def interval(self) -> tuple[float, float]:
        z = _z_for(self.confidence)
        return (self.value - z * self.stderr, self.value + z * self.stderr)

    def contains(self, truth: float) -> bool:
        """True if *truth* lies inside the confidence interval."""
        low, high = self.interval
        return low <= truth <= high


def _z_for(confidence: float) -> float:
    """Two-sided normal quantile via Acklam-style rational approximation."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    p = 1.0 - (1.0 - confidence) / 2.0
    # Beasley-Springer-Moro approximation of the normal inverse CDF.
    a = [-39.69683028665376, 220.9460984245205, -275.9285104469687,
         138.3577518672690, -30.66479806614716, 2.506628277459239]
    b = [-54.47609879822406, 161.5858368580409, -155.6989798598866,
         66.80131188771972, -13.28068155288572]
    c = [-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
         -2.549732539343734, 4.374664141464968, 2.938163982698783]
    d = [0.007784695709041462, 0.3224671290700398, 2.445134137142996,
         3.754408661907416]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def sample_indices(
    population_size: int,
    sample_size: int,
    rng: np.random.Generator,
) -> list[int]:
    """Simple random sample without replacement."""
    if sample_size > population_size:
        raise ConfigurationError(
            f"sample_size {sample_size} exceeds population {population_size}"
        )
    return sorted(int(i) for i in rng.choice(population_size, size=sample_size, replace=False))


def estimate_proportion(
    labels: Sequence[bool],
    population_size: int,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate a population proportion from sampled boolean labels.

    Applies the finite-population correction — samples of a small
    population are more informative than the infinite-population formula
    suggests.
    """
    n = len(labels)
    if n == 0:
        raise ConfigurationError("cannot estimate from an empty sample")
    p_hat = sum(1 for v in labels if v) / n
    fpc = math.sqrt((population_size - n) / max(1, population_size - 1))
    stderr = math.sqrt(p_hat * (1 - p_hat) / n) * fpc
    return Estimate(value=p_hat, stderr=stderr, confidence=confidence, sample_size=n)


def estimate_count(
    labels: Sequence[bool],
    population_size: int,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate how many population items satisfy the predicate."""
    prop = estimate_proportion(labels, population_size, confidence)
    return Estimate(
        value=prop.value * population_size,
        stderr=prop.stderr * population_size,
        confidence=confidence,
        sample_size=prop.sample_size,
    )


def estimate_mean(
    values: Sequence[float],
    confidence: float = 0.95,
) -> Estimate:
    """Estimate a population mean from sampled numeric crowd answers."""
    n = len(values)
    if n == 0:
        raise ConfigurationError("cannot estimate from an empty sample")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    stderr = float(arr.std(ddof=1) / math.sqrt(n)) if n > 1 else float("inf")
    return Estimate(value=mean, stderr=stderr, confidence=confidence, sample_size=n)


def required_sample_size(
    margin_of_error: float,
    confidence: float = 0.95,
    worst_case_p: float = 0.5,
) -> int:
    """Sample size needed for a proportion CI of half-width *margin_of_error*."""
    if margin_of_error <= 0:
        raise ConfigurationError("margin_of_error must be positive")
    z = _z_for(confidence)
    return math.ceil((z * z * worst_case_p * (1 - worst_case_p)) / (margin_of_error ** 2))


def stratified_estimate(
    strata: Sequence[tuple[Sequence[bool], int]],
    confidence: float = 0.95,
) -> Estimate:
    """Stratified proportion estimate: [(labels, stratum_size), ...].

    Weighting by stratum size reduces variance when selectivity differs
    across strata — the standard refinement the tutorial mentions for
    skewed populations.
    """
    if not strata:
        raise ConfigurationError("need at least one stratum")
    total_population = sum(size for _labels, size in strata)
    value = 0.0
    variance = 0.0
    total_sampled = 0
    for labels, size in strata:
        est = estimate_proportion(labels, size, confidence)
        weight = size / total_population
        value += weight * est.value
        variance += (weight * est.stderr) ** 2
        total_sampled += est.sample_size
    return Estimate(
        value=value,
        stderr=math.sqrt(variance),
        confidence=confidence,
        sample_size=total_sampled,
    )
