"""Cost control: pruning, selection, deduction, sampling, task design."""

from repro.cost.deduction import ComparisonDeducer, TransitiveResolver, resolve_pairs
from repro.cost.pruning import (
    CandidatePair,
    PruningReport,
    SimilarityPruner,
    pruning_recall,
)
from repro.cost.sampling import (
    Estimate,
    estimate_count,
    estimate_mean,
    estimate_proportion,
    required_sample_size,
    sample_indices,
    stratified_estimate,
)
from repro.cost.selection import (
    SELECTORS,
    ExpectedErrorReductionSelector,
    MarginSelector,
    TaskSelector,
    UncertaintySelector,
    entropy,
    margin,
)
from repro.cost.similarity import (
    SIMILARITY_FUNCTIONS,
    cosine_tokens,
    edit_distance,
    edit_similarity,
    jaccard_ngrams,
    jaccard_tokens,
    ngrams,
    tokenize,
)
from repro.cost.taskdesign import (
    BatchingPlan,
    FatigueModel,
    batch_tasks,
    best_batch_size,
    plan_batching,
)

__all__ = [
    "SELECTORS",
    "SIMILARITY_FUNCTIONS",
    "BatchingPlan",
    "CandidatePair",
    "ComparisonDeducer",
    "Estimate",
    "ExpectedErrorReductionSelector",
    "FatigueModel",
    "MarginSelector",
    "PruningReport",
    "SimilarityPruner",
    "TaskSelector",
    "TransitiveResolver",
    "UncertaintySelector",
    "batch_tasks",
    "best_batch_size",
    "cosine_tokens",
    "edit_distance",
    "edit_similarity",
    "entropy",
    "estimate_count",
    "estimate_mean",
    "estimate_proportion",
    "jaccard_ngrams",
    "jaccard_tokens",
    "margin",
    "ngrams",
    "plan_batching",
    "pruning_recall",
    "required_sample_size",
    "resolve_pairs",
    "sample_indices",
    "stratified_estimate",
    "tokenize",
]
