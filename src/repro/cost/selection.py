"""Task selection: spend the next dollar on the most informative task.

Given a pool of candidate tasks with current label posteriors, pick the
subset worth crowdsourcing next. Three selectors from the surveyed
literature:

* :class:`UncertaintySelector` — highest posterior entropy first (classic
  uncertainty sampling).
* :class:`MarginSelector` — smallest top-two posterior margin first.
* :class:`ExpectedErrorReductionSelector` — largest expected drop in
  misclassification risk from one more (assumed-accuracy) answer.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.errors import ConfigurationError


def entropy(posterior: Mapping[Any, float]) -> float:
    """Shannon entropy in nats; tolerates unnormalized inputs."""
    total = sum(posterior.values())
    if total <= 0:
        return 0.0
    h = 0.0
    for p in posterior.values():
        q = p / total
        if q > 0:
            h -= q * math.log(q)
    return h


def margin(posterior: Mapping[Any, float]) -> float:
    """Top-1 minus top-2 posterior mass (1.0 when only one label)."""
    values = sorted(posterior.values(), reverse=True)
    if len(values) < 2:
        return 1.0
    total = sum(values)
    if total <= 0:
        return 0.0
    return (values[0] - values[1]) / total


class TaskSelector:
    """Interface: rank candidate task ids by priority (highest first)."""

    name = "base"

    def score(self, posterior: Mapping[Any, float]) -> float:
        """Priority of a task given its label posterior (higher = sooner)."""
        raise NotImplementedError

    def select(
        self,
        posteriors: Mapping[str, Mapping[Any, float]],
        budget: int,
    ) -> list[str]:
        """Top-*budget* task ids by score (descending, id tie-break)."""
        if budget < 0:
            raise ConfigurationError("budget must be non-negative")
        ranked = sorted(
            posteriors,
            key=lambda task_id: (-self.score(posteriors[task_id]), task_id),
        )
        return ranked[:budget]


class UncertaintySelector(TaskSelector):
    """Prioritize maximum posterior entropy."""

    name = "uncertainty"

    def score(self, posterior: Mapping[Any, float]) -> float:
        return entropy(posterior)


class MarginSelector(TaskSelector):
    """Prioritize minimum top-two margin (score = 1 - margin)."""

    name = "margin"

    def score(self, posterior: Mapping[Any, float]) -> float:
        return 1.0 - margin(posterior)


class ExpectedErrorReductionSelector(TaskSelector):
    """Prioritize the expected drop in Bayes risk from one more answer.

    Risk of a task = 1 - max posterior. One more answer from a worker of
    *assumed_accuracy* updates the posterior per the one-coin likelihood;
    the expected new risk is marginalized over the posterior predictive.
    """

    name = "eer"

    def __init__(self, assumed_accuracy: float = 0.75):
        if not 0.5 < assumed_accuracy < 1.0:
            raise ConfigurationError("assumed_accuracy must be in (0.5, 1)")
        self.assumed_accuracy = assumed_accuracy

    def score(self, posterior: Mapping[Any, float]) -> float:
        labels = list(posterior)
        total = sum(posterior.values())
        if total <= 0 or len(labels) < 2:
            return 0.0
        post = {label: p / total for label, p in posterior.items()}
        k = len(labels)
        p = self.assumed_accuracy
        current_risk = 1.0 - max(post.values())
        expected_risk = 0.0
        for observed in labels:
            predictive = sum(
                post[label] * (p if label == observed else (1.0 - p) / (k - 1))
                for label in labels
            )
            if predictive <= 0:
                continue
            updated = {
                label: post[label] * (p if label == observed else (1.0 - p) / (k - 1))
                for label in labels
            }
            z = sum(updated.values())
            expected_risk += predictive * (1.0 - max(updated.values()) / z)
        return current_risk - expected_risk


SELECTORS = {
    "uncertainty": UncertaintySelector,
    "margin": MarginSelector,
    "eer": ExpectedErrorReductionSelector,
}
