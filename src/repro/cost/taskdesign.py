"""Task design: batching microtasks into HITs and its quality model.

The cheapest cost control is a better interface. Batching *b* questions
into one HIT costs one worker engagement instead of *b*, but long HITs
fatigue workers: per-question accuracy decays with position. The decay
model here (linear per-slot penalty, floored) matches the empirical shape
the surveyed studies report; the T-series benchmarks sweep the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.platform.task import HIT, Task


def batch_tasks(tasks: Sequence[Task], batch_size: int) -> list[HIT]:
    """Group tasks into HITs of *batch_size* (last one may be smaller)."""
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    hits = []
    for start in range(0, len(tasks), batch_size):
        hits.append(HIT(tasks=list(tasks[start : start + batch_size])))
    return hits


@dataclass
class FatigueModel:
    """Per-slot accuracy multiplier within a batched HIT.

    The k-th question (0-based) of a HIT retains
    ``max(floor, 1 - decay * k)`` of the worker's base accuracy.
    """

    decay: float = 0.01
    floor: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay < 1.0:
            raise ConfigurationError("decay must be in [0, 1)")
        if not 0.0 < self.floor <= 1.0:
            raise ConfigurationError("floor must be in (0, 1]")

    def multiplier(self, slot: int) -> float:
        """Accuracy multiplier for the slot-*k* question of a HIT."""
        if slot < 0:
            raise ConfigurationError("slot must be non-negative")
        return max(self.floor, 1.0 - self.decay * slot)

    def effective_accuracy(self, base_accuracy: float, slot: int) -> float:
        """Base accuracy degraded by the fatigue multiplier at *slot*."""
        return base_accuracy * self.multiplier(slot)


@dataclass(frozen=True)
class BatchingPlan:
    """Predicted cost/quality of a batch size, for requester planning."""

    batch_size: int
    hits_needed: int
    engagement_cost: float
    mean_accuracy_multiplier: float


def plan_batching(
    n_tasks: int,
    batch_sizes: Sequence[int],
    engagement_overhead: float = 1.0,
    per_question_cost: float = 0.2,
    fatigue: FatigueModel | None = None,
) -> list[BatchingPlan]:
    """Score candidate batch sizes.

    Engagement cost = hits * (overhead + per_question_cost * batch) — the
    overhead term is what batching amortizes. The accuracy multiplier is
    the mean fatigue multiplier across slots. Callers pick their own point
    on the frontier; :func:`best_batch_size` picks by a simple ratio.
    """
    if n_tasks < 1:
        raise ConfigurationError("n_tasks must be >= 1")
    fatigue = fatigue or FatigueModel()
    plans = []
    for size in batch_sizes:
        if size < 1:
            raise ConfigurationError("batch sizes must be >= 1")
        hits_needed = -(-n_tasks // size)  # ceil division
        cost = hits_needed * (engagement_overhead + per_question_cost * size)
        mean_multiplier = sum(fatigue.multiplier(k) for k in range(size)) / size
        plans.append(
            BatchingPlan(
                batch_size=size,
                hits_needed=hits_needed,
                engagement_cost=cost,
                mean_accuracy_multiplier=mean_multiplier,
            )
        )
    return plans


def best_batch_size(plans: Sequence[BatchingPlan]) -> BatchingPlan:
    """Pick the plan maximizing accuracy-per-cost (quality/cost ratio)."""
    if not plans:
        raise ConfigurationError("no plans to choose from")
    return max(plans, key=lambda p: p.mean_accuracy_multiplier / p.engagement_cost)


def iterate_hit_slots(hit: HIT) -> Iterator[tuple[int, Task]]:
    """(slot index, task) pairs of a HIT, in presentation order."""
    return enumerate(hit.tasks)
