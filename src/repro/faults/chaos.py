"""Chaos harness: run the crowd pipeline under randomized fault plans.

One :func:`run_chaos` call builds a fully deterministic world (explicit
worker and task ids — nothing leaks from process-global counters),
attaches a :func:`~repro.faults.plan.random_plan` derived from the seed,
and runs a degrade-policy batch collection behind budget and deadline
circuit breakers. It then asserts the *survival contract*:

* no unhandled exception escapes the scheduler;
* accounting stays coherent (the answer log, the stats counters, and the
  money spent all agree);
* the coverage report sums correctly;
* the same seed reproduces a bit-identical outcome digest.

CI runs this over a handful of seeds (``python -m repro chaos``); local
hunts can turn ``intensity`` up and sweep wider seed ranges.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, random_plan
from repro.obs.metrics import MetricsRegistry
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.recovery.breakers import BudgetBreaker, DeadlineBreaker
from repro.recovery.degrade import DegradedResult
from repro.workers.models import OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker

# Fault metrics folded into the report (and the digest) when present.
_FAULT_METRICS = (
    "faults.outage_delays",
    "faults.worker_leaves",
    "faults.worker_joins",
    "faults.budget_shocks",
    "faults.stragglers",
    "faults.duplicated",
    "faults.late",
    "faults.corrupted",
    "recovery.breaker_trips",
    "recovery.tasks_failed",
)

#: Mitigation strategies `run_chaos` / `verify_kill_resume` accept.
MITIGATIONS = ("none", "hedge")


def _check_mitigation(mitigation: str) -> bool:
    """Validate the strategy name; True when hedging should be enabled."""
    if mitigation not in MITIGATIONS:
        raise ConfigurationError(
            f"unknown mitigation {mitigation!r}; available: {MITIGATIONS}"
        )
    return mitigation == "hedge"


@dataclass
class ChaosReport:
    """Outcome of one chaos run: survival, coverage, and a replay digest."""

    seed: int
    plan: FaultPlan
    result: DegradedResult
    fault_counts: dict[str, int] = field(default_factory=dict)
    checks: list[str] = field(default_factory=list)
    digest: str = ""
    mitigation: str = "none"
    makespan: float = 0.0   # simulated seconds across all batches
    cost: float = 0.0       # budget actually spent
    hedges: int = 0         # hedge copies launched (0 under mitigation="none")

    @property
    def survived(self) -> bool:
        """True when every coherence check passed (exceptions never get here)."""
        return True

    def summary(self) -> str:
        """One line per chaos run for CI logs."""
        active = ", ".join(
            f"{name.split('.', 1)[1]}={count}"
            for name, count in self.fault_counts.items()
            if count
        )
        line = (
            f"seed {self.seed}: {self.result.coverage.summary()}; "
            f"faults [{active or 'none'}]; "
            f"makespan {self.makespan:.0f}s, cost {self.cost:.4f}"
        )
        if self.mitigation != "none":
            line += f"; mitigation {self.mitigation} ({self.hedges} hedges)"
        return line + f"; digest {self.digest[:12]}"


def _build_world(seed: int, n_workers: int, budget: float) -> SimulatedPlatform:
    """A platform whose every identity is derived from the seed.

    Worker ids are explicit (``cw0``, ``cw1``, ...) so two chaos runs in
    the same process — where the global worker-id counter has advanced —
    still produce byte-identical outcomes.
    """
    import numpy as np

    rng = np.random.default_rng([seed, 0xC0FFEE])
    workers = [
        Worker(
            model=OneCoinModel(float(rng.uniform(0.55, 0.95))),
            worker_id=f"cw{i}",
        )
        for i in range(n_workers)
    ]
    pool = WorkerPool(workers, seed=seed)
    platform = SimulatedPlatform(
        pool,
        budget=budget,
        seed=seed + 1,
        metrics=MetricsRegistry(enabled=True),
    )
    return platform


def _make_tasks(seed: int, n_tasks: int) -> list[Task]:
    return [
        Task(
            TaskType.SINGLE_CHOICE,
            question=f"chaos question {i}",
            options=("yes", "no"),
            truth="yes" if (seed + i) % 2 == 0 else "no",
            task_id=f"chaos-s{seed}-t{i}",
        )
        for i in range(n_tasks)
    ]


def _check(condition: bool, label: str, checks: list[str]) -> None:
    if not condition:
        raise AssertionError(f"chaos coherence check failed: {label}")
    checks.append(label)


def run_chaos(
    seed: int,
    intensity: float = 1.0,
    n_tasks: int = 40,
    n_workers: int = 12,
    redundancy: int = 3,
    budget: float = 2.5,
    deadline: float = 50_000.0,
    plan: FaultPlan | None = None,
    mitigation: str = "none",
) -> ChaosReport:
    """Run one seeded chaos experiment and verify the survival contract.

    Raises ``AssertionError`` if any coherence check fails; any other
    exception escaping means the pipeline did not survive the fault plan.
    ``mitigation="hedge"`` turns on speculative straggler re-issue, so the
    suite can report makespan/cost deltas per strategy across seeds.
    """
    hedge = _check_mitigation(mitigation)
    plan = plan if plan is not None else random_plan(seed, intensity)
    platform = _build_world(seed, n_workers, budget)
    platform.attach_scheduler(
        BatchConfig(
            batch_size=8,
            max_parallel=4,
            retry_limit=2,
            assignment_timeout=240.0,
            abandon_rate=0.05,
            retry_backoff=1.0,
            seed=seed + 2,
            failure_policy="degrade",
            hedge_enabled=hedge,
        )
    )
    platform.attach_faults(plan)
    scheduler = platform.scheduler
    scheduler.breakers = [
        BudgetBreaker(reserve=budget * 0.02),
        DeadlineBreaker(deadline=deadline),
    ]
    tasks = _make_tasks(seed, n_tasks)
    run = scheduler.run(tasks, redundancy=redundancy)
    result = DegradedResult.from_answers(tasks, run.answers, run.failures, redundancy)

    checks: list[str] = []
    stats = platform.stats
    _check(
        stats.answers_collected == len(platform.answers),
        "answers_collected matches the answer log",
        checks,
    )
    _check(
        abs(stats.cost_spent - sum(a.reward_paid for a in platform.answers)) < 1e-9,
        "cost_spent equals the sum of rewards paid",
        checks,
    )
    _check(
        stats.cost_spent <= platform.budget + 1e-9,
        "spend never exceeds the (possibly shocked) budget",
        checks,
    )
    result.coverage.validate()
    checks.append("coverage report sums correctly")
    _check(
        set(result.answers) == {t.task_id for t in tasks},
        "degrade keeps a key for every requested task",
        checks,
    )
    _check(
        sum(len(a) for a in result.answers.values()) == result.coverage.answers_collected,
        "coverage answer count matches the result",
        checks,
    )
    per_worker_total = sum(stats.answers_by_worker.values())
    _check(
        per_worker_total == stats.answers_collected,
        "per-worker tallies sum to the total",
        checks,
    )

    fault_counts = {
        name: int(platform.metrics.counter(name).value) for name in _FAULT_METRICS
    }
    return ChaosReport(
        seed=seed,
        plan=plan,
        result=result,
        fault_counts=fault_counts,
        checks=checks,
        digest=_digest(result, stats, fault_counts),
        mitigation=mitigation,
        makespan=stats.batch_makespan,
        cost=stats.cost_spent,
        hedges=stats.hedges_launched,
    )


def _digest(result: DegradedResult, stats, fault_counts: dict[str, int]) -> str:
    """Deterministic digest of a chaos outcome (excludes wall-clock)."""
    payload = {
        "answers": {
            task_id: [
                [a.worker_id, repr(a.value), round(a.submitted_at, 9),
                 round(a.duration, 9), a.reward_paid]
                for a in answers
            ]
            for task_id, answers in sorted(result.answers.items())
        },
        "failures": {
            task_id: [info.reason, info.attempts, list(info.outcomes)]
            for task_id, info in sorted(result.failures.items())
        },
        "coverage": [
            result.coverage.requested,
            result.coverage.completed,
            result.coverage.partial,
            result.coverage.failed,
            result.coverage.answers_collected,
        ],
        "stats": {
            "answers_collected": stats.answers_collected,
            "cost_spent": round(stats.cost_spent, 9),
            "batches_dispatched": stats.batches_dispatched,
            "assignments_dispatched": stats.assignments_dispatched,
            "assignments_retried": stats.assignments_retried,
            "assignments_timed_out": stats.assignments_timed_out,
            "assignments_abandoned": stats.assignments_abandoned,
            "batch_makespan": round(stats.batch_makespan, 6),
            "batch_outage_wait": round(stats.batch_outage_wait, 6),
            "hedges_launched": stats.hedges_launched,
            "hedges_won": stats.hedges_won,
            "hedges_lost": stats.hedges_lost,
            "hedges_cancelled": stats.hedges_cancelled,
            "hedge_cost_refunded": round(stats.hedge_cost_refunded, 9),
        },
        "faults": fault_counts,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _outcome_fingerprint(platform: SimulatedPlatform, outcome) -> str:
    """Digest of a checkpointed run's answers/failures/stats (no wall-clock)."""
    stats = platform.stats
    payload = {
        "answers": {
            task_id: [
                [a.worker_id, repr(a.value), round(a.submitted_at, 9),
                 round(a.duration, 9), a.reward_paid]
                for a in answers
            ]
            for task_id, answers in sorted(outcome.answers.items())
        },
        "failures": {
            task_id: [info.reason, info.attempts, list(info.outcomes)]
            for task_id, info in sorted(outcome.failures.items())
        },
        "stats": {
            "answers_collected": stats.answers_collected,
            "cost_spent": round(stats.cost_spent, 9),
            "assignments_dispatched": stats.assignments_dispatched,
            "assignments_retried": stats.assignments_retried,
            "assignments_timed_out": stats.assignments_timed_out,
            "assignments_abandoned": stats.assignments_abandoned,
            "batch_makespan": round(stats.batch_makespan, 6),
            "batch_outage_wait": round(stats.batch_outage_wait, 6),
            "hedges_launched": stats.hedges_launched,
            "hedges_won": stats.hedges_won,
            "hedges_lost": stats.hedges_lost,
            "hedges_cancelled": stats.hedges_cancelled,
            "hedge_cost_refunded": round(stats.hedge_cost_refunded, 9),
        },
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _resumable_world(
    seed: int, n_workers: int, budget: float, plan: FaultPlan, hedge: bool = False
) -> SimulatedPlatform:
    """A chaos world with a degrade-policy scheduler and faults attached."""
    platform = _build_world(seed, n_workers, budget)
    platform.attach_scheduler(
        BatchConfig(
            batch_size=8,
            max_parallel=3,
            retry_limit=2,
            assignment_timeout=240.0,
            abandon_rate=0.05,
            retry_backoff=1.0,
            seed=seed + 2,
            failure_policy="degrade",
            hedge_enabled=hedge,
        )
    )
    platform.attach_faults(plan)
    return platform


def verify_kill_resume(
    seed: int,
    workdir: str,
    n_tasks: int = 24,
    n_workers: int = 10,
    redundancy: int = 3,
    kill_after: int = 1,
    intensity: float = 1.0,
    mitigation: str = "none",
) -> bool:
    """Prove kill-and-resume bit-identity under a randomized fault plan.

    Runs the same seeded chaos workload twice — once uninterrupted, once
    killed after *kill_after* chunks and resumed on a **freshly built**
    platform (the moral equivalent of a new process) — and returns True
    when both runs produce identical answers, failure records, and
    platform stats (wall-clock excluded). *workdir* holds the two
    checkpoint directories. ``mitigation="hedge"`` verifies the contract
    with hedging live (the checkpoint then carries the hedge state).
    """
    from pathlib import Path

    from repro.errors import SimulatedCrash
    from repro.recovery.runner import CheckpointingRunner

    hedge = _check_mitigation(mitigation)
    plan = random_plan(seed, intensity)
    budget = 50.0
    tasks = _make_tasks(seed, n_tasks)

    baseline_platform = _resumable_world(seed, n_workers, budget, plan, hedge=hedge)
    baseline = CheckpointingRunner(
        baseline_platform, Path(workdir) / "baseline", redundancy=redundancy
    ).run(tasks)

    crash_dir = Path(workdir) / "crashed"
    crashed_platform = _resumable_world(seed, n_workers, budget, plan, hedge=hedge)
    try:
        CheckpointingRunner(
            crashed_platform, crash_dir, redundancy=redundancy
        ).run(tasks, kill_after=kill_after)
    except SimulatedCrash:
        pass
    resumed_platform = _resumable_world(seed, n_workers, budget, plan, hedge=hedge)
    resumed = CheckpointingRunner(
        resumed_platform, crash_dir, redundancy=redundancy
    ).run(_make_tasks(seed, n_tasks), resume=True)

    return _outcome_fingerprint(baseline_platform, baseline) == _outcome_fingerprint(
        resumed_platform, resumed
    )


def chaos_suite(
    seeds: "list[int] | range",
    intensity: float = 1.0,
    **kwargs,
) -> list[ChaosReport]:
    """Run :func:`run_chaos` over several seeds, collecting every report."""
    return [run_chaos(seed, intensity=intensity, **kwargs) for seed in seeds]
