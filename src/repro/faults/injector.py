"""Fault injector: applies a :class:`~repro.faults.plan.FaultPlan` at the
platform/batch seams.

The injector is deliberately *stateless*: every random decision draws from
a throwaway generator seeded by ``(plan seed, decision domain, decision
key)``, where the key is a stable identifier (the global batch index, the
assignment's RNG stream id). Three properties fall out:

* the same plan produces the same faults at any ``max_parallel``;
* a checkpointed-and-resumed run sees exactly the faults the
  uninterrupted run would have seen (nothing to snapshot);
* operator logic never changes — the scheduler consults the injector at
  its existing seams (batch start, attempt execution, answer commit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.faults.plan import FaultPlan
from repro.platform.task import Answer, Task
from repro.workers.worker import Worker

if TYPE_CHECKING:
    from repro.platform.platform import SimulatedPlatform

# Decision domains: keep derived streams disjoint per fault family.
_DOMAIN_CHURN = 1
_DOMAIN_STRAGGLER = 2
_DOMAIN_DELIVERY = 3


class FaultInjector:
    """Evaluates a fault plan against a live platform."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._joined = 0  # info only; reconstructed deterministically on resume

    def _rng(self, domain: int, key: int) -> np.random.Generator:
        return np.random.default_rng([self.plan.seed, domain, key])

    # ------------------------------------------------------------------ #
    # Batch-boundary faults (caller thread, deterministic order)
    # ------------------------------------------------------------------ #

    def outage_delay(self, now: float) -> float:
        """Simulated seconds a batch starting at *now* stalls for outages."""
        return self.plan.outage_delay(now)

    def on_batch_start(
        self,
        batch_index: int,
        platform: "SimulatedPlatform",
        redundancy: int,
    ) -> list[str]:
        """Apply churn and budget shocks due before *batch_index*.

        Returns human-readable event strings (also mirrored into the
        platform's metrics and tracer by the caller).
        """
        events: list[str] = []
        churn = self.plan.churn
        if churn is not None and (churn.leave_rate > 0 or churn.join_rate > 0):
            rng = self._rng(_DOMAIN_CHURN, batch_index)
            events.extend(self._apply_churn(rng, batch_index, platform, redundancy))
        factor = self.plan.shock_factor(batch_index)
        if factor is not None and np.isfinite(platform.budget):
            before = platform.budget
            remaining = max(0.0, platform.budget - platform.stats.cost_spent)
            platform.budget = platform.stats.cost_spent + remaining * factor
            events.append(
                f"budget shock x{factor:.2f}: ceiling {before:.4f} -> {platform.budget:.4f}"
            )
            platform.metrics.inc("faults.budget_shocks")
        return events

    def _apply_churn(
        self,
        rng: np.random.Generator,
        batch_index: int,
        platform: "SimulatedPlatform",
        redundancy: int,
    ) -> list[str]:
        churn = self.plan.churn
        assert churn is not None
        events: list[str] = []
        pool = platform.pool
        floor = max(churn.min_pool, redundancy)
        # Departures: iterate the pool in stable order so the draw sequence
        # is identical at any parallelism.
        for worker in list(pool):
            if not worker.active:
                continue
            if rng.random() < churn.leave_rate and len(pool.active_workers) > floor:
                pool.deactivate(worker.worker_id)
                events.append(f"worker {worker.worker_id} left")
                platform.metrics.inc("faults.worker_leaves")
        # Arrivals: Poisson-many joiners with deterministic ids, so a
        # resumed run reconstructs the exact same pool membership.
        joins = int(rng.poisson(churn.join_rate)) if churn.join_rate > 0 else 0
        low, high = churn.join_accuracy
        for i in range(joins):
            accuracy = float(rng.uniform(low, high))
            worker_id = f"j{self.plan.seed}b{batch_index}n{i}"
            if worker_id in pool:
                continue  # resume replayed this batch boundary already
            from repro.workers.models import OneCoinModel

            pool.add_worker(Worker(model=OneCoinModel(accuracy), worker_id=worker_id))
            self._joined += 1
            events.append(f"worker {worker_id} joined (accuracy {accuracy:.2f})")
            platform.metrics.inc("faults.worker_joins")
        return events

    # ------------------------------------------------------------------ #
    # Attempt-level faults (may run on worker threads — derived RNG only)
    # ------------------------------------------------------------------ #

    def perturb_duration(self, stream: int, duration: float) -> tuple[float, bool]:
        """Apply straggler spikes to an attempt's sampled service time.

        Returns (possibly inflated duration, straggled?). Keyed by the
        assignment's global RNG stream id, so the decision is identical
        under any thread interleaving.
        """
        spikes = self.plan.stragglers
        if spikes is None or spikes.rate <= 0.0:
            return duration, False
        rng = self._rng(_DOMAIN_STRAGGLER, stream)
        if rng.random() < spikes.rate:
            return duration * spikes.multiplier, True
        return duration, False

    # ------------------------------------------------------------------ #
    # Delivery faults (commit path: caller thread, deterministic order)
    # ------------------------------------------------------------------ #

    def deliver(
        self, answer: Answer, task: Task, stream: int
    ) -> tuple[Answer, list[Answer], list[str]]:
        """Possibly corrupt/delay/duplicate one committed answer.

        Returns ``(delivered, duplicates, fault_names)`` where *delivered*
        replaces the original answer and *duplicates* are extra uncharged
        copies to append to the log (``reward_paid=0`` — platforms do not
        double-bill duplicate deliveries).
        """
        delivery = self.plan.delivery
        if delivery is None:
            return answer, [], []
        rng = self._rng(_DOMAIN_DELIVERY, stream)
        faults: list[str] = []
        value = answer.value
        submitted_at = answer.submitted_at
        if delivery.corrupt_rate > 0 and rng.random() < delivery.corrupt_rate and task.options:
            value = task.options[int(rng.integers(len(task.options)))]
            faults.append("corrupted")
        if delivery.late_rate > 0 and rng.random() < delivery.late_rate:
            submitted_at += delivery.late_delay
            faults.append("late")
        delivered = answer
        if faults:
            delivered = Answer(
                task_id=answer.task_id,
                worker_id=answer.worker_id,
                value=value,
                submitted_at=submitted_at,
                duration=answer.duration,
                reward_paid=answer.reward_paid,
            )
        duplicates: list[Answer] = []
        if delivery.duplicate_rate > 0 and rng.random() < delivery.duplicate_rate:
            duplicates.append(
                Answer(
                    task_id=delivered.task_id,
                    worker_id=delivered.worker_id,
                    value=delivered.value,
                    submitted_at=delivered.submitted_at,
                    duration=delivered.duration,
                    reward_paid=0.0,
                )
            )
            faults.append("duplicated")
        return delivered, duplicates, faults
