"""Declarative fault plans: what goes wrong, when, and how often.

A :class:`FaultPlan` is a pure description — frozen dataclasses, JSON
round-trippable — of the hostile-runtime phenomena a crowd platform
exhibits (the Reprowd argument: if the platform can fail in these ways,
the pipeline must be tested under them *reproducibly*):

* **platform outages** — windows of simulated time during which the
  platform serves no assignments; in-flight batches stall until the
  window closes.
* **worker churn** — workers leave mid-run and new (unvetted) workers
  join, shifting the pool's quality distribution under the requester.
* **delivery faults** — answers arrive duplicated, late, or corrupted.
* **straggler spikes** — a fraction of assignments take many times their
  sampled service time (often tripping the timeout/retry machinery).
* **budget shocks** — the requester's remaining budget is slashed
  mid-run (a grant cut, a runaway parallel query).

Every stochastic decision an injector makes is derived from
``(plan.seed, decision domain, decision key)``, never from shared mutable
RNG state, so a plan replays identically at any parallelism and across
checkpoint/resume boundaries.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class OutageWindow:
    """The platform serves nothing during ``[start, end)`` simulated seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise FaultPlanError(
                f"outage window must satisfy 0 <= start < end, got [{self.start}, {self.end})"
            )

    def delay_from(self, now: float) -> float:
        """Seconds a batch starting at *now* must wait out, 0 if outside."""
        if self.start <= now < self.end:
            return self.end - now
        return 0.0


@dataclass(frozen=True)
class WorkerChurn:
    """Per-batch worker departure/arrival process.

    Attributes:
        leave_rate: Probability each active worker leaves before a batch.
        join_rate: Expected new workers joining before a batch (Poisson).
        join_accuracy: (low, high) accuracy range for joiners — fresh
            workers are typically less vetted than the seed pool.
        min_pool: Churn never shrinks the active pool below this floor.
    """

    leave_rate: float = 0.0
    join_rate: float = 0.0
    join_accuracy: tuple[float, float] = (0.5, 0.9)
    min_pool: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.leave_rate <= 1.0:
            raise FaultPlanError(f"leave_rate must be in [0, 1], got {self.leave_rate}")
        if self.join_rate < 0:
            raise FaultPlanError(f"join_rate must be >= 0, got {self.join_rate}")
        low, high = self.join_accuracy
        if not 0.0 <= low <= high <= 1.0:
            raise FaultPlanError(
                f"join_accuracy must satisfy 0 <= low <= high <= 1, got {self.join_accuracy}"
            )
        if self.min_pool < 1:
            raise FaultPlanError(f"min_pool must be >= 1, got {self.min_pool}")


@dataclass(frozen=True)
class DeliveryFaults:
    """Answer-delivery corruption: duplicates, latecomers, garbled values.

    Attributes:
        duplicate_rate: Probability a committed answer is delivered twice
            (the copy is never charged — platforms do not double-bill).
        late_rate: Probability an answer's submission stamp slips.
        late_delay: Simulated seconds a late answer slips by.
        corrupt_rate: Probability a choice answer's value is replaced by a
            uniformly random option (transport/UI corruption).
    """

    duplicate_rate: float = 0.0
    late_rate: float = 0.0
    late_delay: float = 60.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("duplicate_rate", "late_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1], got {rate}")
        if self.late_delay < 0:
            raise FaultPlanError(f"late_delay must be >= 0, got {self.late_delay}")


@dataclass(frozen=True)
class StragglerSpikes:
    """A fraction of assignments run far over their sampled service time."""

    rate: float = 0.0
    multiplier: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"rate must be in [0, 1], got {self.rate}")
        if self.multiplier < 1.0:
            raise FaultPlanError(f"multiplier must be >= 1, got {self.multiplier}")


@dataclass(frozen=True)
class BudgetShock:
    """Before global batch *at_batch*, remaining budget is scaled by *factor*."""

    at_batch: int
    factor: float

    def __post_init__(self) -> None:
        if self.at_batch < 0:
            raise FaultPlanError(f"at_batch must be >= 0, got {self.at_batch}")
        if not 0.0 <= self.factor <= 1.0:
            raise FaultPlanError(f"factor must be in [0, 1], got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seed-deterministic description of a hostile run."""

    seed: int = 0
    outages: tuple[OutageWindow, ...] = ()
    churn: WorkerChurn | None = None
    delivery: DeliveryFaults | None = None
    stragglers: StragglerSpikes | None = None
    budget_shocks: tuple[BudgetShock, ...] = ()
    name: str = ""
    # populated lazily, not part of identity
    _shock_index: dict[int, float] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultPlanError(f"seed must be an integer, got {self.seed!r}")
        seen: dict[int, float] = {}
        for shock in self.budget_shocks:
            if shock.at_batch in seen:
                raise FaultPlanError(f"duplicate budget shock at batch {shock.at_batch}")
            seen[shock.at_batch] = shock.factor
        self._shock_index.update(seen)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.outages
            or self.churn
            or self.delivery
            or self.stragglers
            or self.budget_shocks
        )

    def outage_delay(self, now: float) -> float:
        """Total stall a batch starting at *now* suffers (longest window wins)."""
        return max((w.delay_from(now) for w in self.outages), default=0.0)

    def shock_factor(self, batch_index: int) -> float | None:
        """The budget scale factor due before *batch_index*, if any."""
        return self._shock_index.get(batch_index)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-ready dict (drops the lazy shock index)."""
        data = asdict(self)
        data.pop("_shock_index", None)
        data["outages"] = [asdict(w) for w in self.outages]
        data["budget_shocks"] = [asdict(s) for s in self.budget_shocks]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            churn = data.get("churn")
            if churn is not None:
                churn = WorkerChurn(
                    leave_rate=churn.get("leave_rate", 0.0),
                    join_rate=churn.get("join_rate", 0.0),
                    join_accuracy=tuple(churn.get("join_accuracy", (0.5, 0.9))),
                    min_pool=churn.get("min_pool", 3),
                )
            delivery = data.get("delivery")
            if delivery is not None:
                delivery = DeliveryFaults(**delivery)
            stragglers = data.get("stragglers")
            if stragglers is not None:
                stragglers = StragglerSpikes(**stragglers)
            return cls(
                seed=data.get("seed", 0),
                outages=tuple(OutageWindow(**w) for w in data.get("outages", ())),
                churn=churn,
                delivery=delivery,
                stragglers=stragglers,
                budget_shocks=tuple(
                    BudgetShock(**s) for s in data.get("budget_shocks", ())
                ),
                name=data.get("name", ""),
            )
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        """Pretty-printed JSON; round-trips through :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: "Path | str") -> "FaultPlan":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_json(text)


def straggler_spike_plan(
    seed: int, rate: float = 0.25, multiplier: float = 20.0
) -> FaultPlan:
    """A plan that injects *only* straggler spikes — the hedging workload.

    A quarter of assignments running 20× over their sampled service time
    is the tail-at-scale regime the hedging benchmark gates against: no
    churn, outages, or delivery noise, so makespan/cost deltas are
    attributable to the mitigation strategy alone.
    """
    return FaultPlan(
        seed=seed,
        stragglers=StragglerSpikes(rate=rate, multiplier=multiplier),
        name=f"straggler-spike-{seed}",
    )


def random_plan(seed: int, intensity: float = 1.0) -> FaultPlan:
    """A randomized but fully seed-determined plan for chaos runs.

    The same *seed* always yields the same plan; *intensity* in (0, 1.5]
    scales every rate so CI can stay in the survivable regime while local
    chaos hunts can turn the dial up.
    """
    if intensity <= 0:
        raise FaultPlanError(f"intensity must be > 0, got {intensity}")
    rng = np.random.default_rng([seed, 0xFA017])
    outages: list[OutageWindow] = []
    for _ in range(int(rng.integers(0, 3))):
        start = float(rng.uniform(0, 600))
        outages.append(OutageWindow(start=start, end=start + float(rng.uniform(20, 180))))
    churn = None
    if rng.random() < 0.7:
        churn = WorkerChurn(
            leave_rate=min(1.0, float(rng.uniform(0.0, 0.08)) * intensity),
            join_rate=float(rng.uniform(0.0, 0.8)) * intensity,
            join_accuracy=(0.5, 0.9),
        )
    delivery = None
    if rng.random() < 0.8:
        delivery = DeliveryFaults(
            duplicate_rate=min(1.0, float(rng.uniform(0.0, 0.1)) * intensity),
            late_rate=min(1.0, float(rng.uniform(0.0, 0.2)) * intensity),
            late_delay=float(rng.uniform(10, 120)),
            corrupt_rate=min(1.0, float(rng.uniform(0.0, 0.08)) * intensity),
        )
    stragglers = None
    if rng.random() < 0.6:
        stragglers = StragglerSpikes(
            rate=min(1.0, float(rng.uniform(0.0, 0.15)) * intensity),
            multiplier=float(rng.uniform(3, 12)),
        )
    shocks: list[BudgetShock] = []
    if rng.random() < 0.4:
        shocks.append(
            BudgetShock(
                at_batch=int(rng.integers(1, 6)),
                factor=float(rng.uniform(0.3, 0.9)),
            )
        )
    return FaultPlan(
        seed=seed,
        outages=tuple(outages),
        churn=churn,
        delivery=delivery,
        stragglers=stragglers,
        budget_shocks=tuple(shocks),
        name=f"chaos-{seed}",
    )
