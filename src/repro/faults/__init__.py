"""Fault injection for the simulated crowd platform (repro.faults).

Declarative, seed-deterministic fault plans (:mod:`repro.faults.plan`)
applied at the platform/batch seams by a stateless injector
(:mod:`repro.faults.injector`), plus a chaos harness
(:mod:`repro.faults.chaos`) that runs pipelines under randomized plans
and asserts survival + accounting coherence.
"""

from repro.faults.chaos import ChaosReport, chaos_suite, run_chaos, verify_kill_resume
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BudgetShock,
    DeliveryFaults,
    FaultPlan,
    OutageWindow,
    StragglerSpikes,
    WorkerChurn,
    random_plan,
    straggler_spike_plan,
)

__all__ = [
    "BudgetShock",
    "ChaosReport",
    "DeliveryFaults",
    "FaultInjector",
    "FaultPlan",
    "OutageWindow",
    "StragglerSpikes",
    "WorkerChurn",
    "chaos_suite",
    "random_plan",
    "run_chaos",
    "straggler_spike_plan",
    "verify_kill_resume",
]
