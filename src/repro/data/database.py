"""Database catalog: a named collection of tables.

The catalog is deliberately simple — crowddm's contribution is the crowd
layer, not storage — but it provides the invariants the engine relies on:
unique table names, schema lookup, and enumeration of outstanding crowd work
across all tables.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import DuplicateTableError, UnknownTableError


class Database:
    """An in-memory catalog of :class:`~repro.data.table.Table` objects."""

    def __init__(self, name: str = "crowddm"):
        self.name = name
        self._tables: dict[str, Table] = {}

    def __contains__(self, table_name: object) -> bool:
        return table_name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"Database<{self.name}, tables={sorted(self._tables)}>"

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def create_table(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[dict[str, Any]] = (),
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table; optionally bulk-load *rows*.

        Raises DuplicateTableError unless *if_not_exists* is set, in which
        case the existing table is returned unchanged.
        """
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise DuplicateTableError(f"table {name!r} already exists")
        table = Table(name, schema)
        table.insert_many(rows)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(
                f"no table {name!r}; available: {', '.join(sorted(self._tables)) or '(none)'}"
            ) from None

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            if if_exists:
                return
            raise UnknownTableError(f"no table {name!r}")
        del self._tables[name]

    def pending_crowd_cells(self) -> dict[str, list[tuple[int, str]]]:
        """Map table name -> [(rowid, column)] of unresolved CNULL cells."""
        pending = {}
        for name, table in self._tables.items():
            cells = table.cnull_cells()
            if cells:
                pending[name] = cells
        return pending

    def completeness(self) -> float:
        """Overall crowd-cell completeness across all tables (1.0 if none)."""
        totals = 0
        unresolved = 0
        for table in self._tables.values():
            crowd_cols = len(table.schema.crowd_columns)
            totals += len(table) * crowd_cols
            unresolved += table.cnull_count()
        if totals == 0:
            return 1.0
        return 1.0 - unresolved / totals
