"""CSV import/export for tables.

CNULL is serialized as the literal string ``__CNULL__`` and SQL NULL as the
empty string, mirroring how CrowdDB-style systems externalize incomplete
relations for later crowd completion.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, TextIO

from repro.data.schema import CNULL, ColumnType, Schema, is_cnull
from repro.data.table import Table

CNULL_TOKEN = "__CNULL__"


def _serialize(value: Any) -> str:
    if is_cnull(value):
        return CNULL_TOKEN
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse(text: str, ctype: ColumnType) -> Any:
    if text == CNULL_TOKEN:
        return CNULL
    if text == "":
        return None
    if ctype is ColumnType.STRING:
        return text
    if ctype is ColumnType.INTEGER:
        return int(text)
    if ctype is ColumnType.FLOAT:
        return float(text)
    if ctype is ColumnType.BOOLEAN:
        lowered = text.lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ValueError(f"cannot parse boolean from {text!r}")
    raise ValueError(f"unsupported column type {ctype!r}")


def write_csv(table: Table, destination: Path | str | TextIO) -> None:
    """Write *table* (header + rows) to a path or open text file."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write(table, handle)
    else:
        _write(table, destination)


def _write(table: Table, handle: TextIO) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.schema.column_names)
    for row in table:
        writer.writerow([_serialize(row[name]) for name in table.schema.column_names])


def read_csv(source: Path | str | TextIO, name: str, schema: Schema) -> Table:
    """Load a CSV with a header row into a new table validated by *schema*.

    The header must list exactly the schema's columns (any order).
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            return _read(handle, name, schema)
    return _read(source, name, schema)


def _read(handle: TextIO, name: str, schema: Schema) -> Table:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV is empty; expected a header row") from None
    expected = set(schema.column_names)
    if set(header) != expected:
        raise ValueError(
            f"CSV header {header!r} does not match schema columns {sorted(expected)!r}"
        )
    table = Table(name, schema)
    for line_no, record in enumerate(reader, start=2):
        if len(record) != len(header):
            raise ValueError(f"line {line_no}: expected {len(header)} fields, got {len(record)}")
        values = {
            col_name: _parse(text, schema.column(col_name).ctype)
            for col_name, text in zip(header, record)
        }
        table.insert(values)
    return table


def table_to_csv_string(table: Table) -> str:
    """Serialize *table* to a CSV string (useful in tests and examples)."""
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


def table_from_csv_string(text: str, name: str, schema: Schema) -> Table:
    """Parse a CSV string produced by :func:`table_to_csv_string`."""
    return read_csv(io.StringIO(text), name, schema)
