"""CSV import/export for tables.

CNULL is serialized as the literal string ``__CNULL__`` and SQL NULL as the
empty string, mirroring how CrowdDB-style systems externalize incomplete
relations for later crowd completion.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, TextIO

from repro.data.schema import CNULL, ColumnType, Schema, is_cnull
from repro.data.table import Table

CNULL_TOKEN = "__CNULL__"


def _serialize(value: Any) -> str:
    if is_cnull(value):
        return CNULL_TOKEN
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse(text: str, ctype: ColumnType) -> Any:
    if text == CNULL_TOKEN:
        return CNULL
    if text == "":
        return None
    if ctype is ColumnType.STRING:
        return text
    if ctype is ColumnType.INTEGER:
        return int(text)
    if ctype is ColumnType.FLOAT:
        return float(text)
    if ctype is ColumnType.BOOLEAN:
        lowered = text.lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ValueError(f"cannot parse boolean from {text!r}")
    raise ValueError(f"unsupported column type {ctype!r}")


def write_csv(table: Table, destination: Path | str | TextIO) -> None:
    """Write *table* (header + rows) to a path or open text file."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write(table, handle)
    else:
        _write(table, destination)


def _write(table: Table, handle: TextIO) -> None:
    writer = csv.writer(handle)
    names = table.schema.column_names
    writer.writerow(names)
    # Columnar export: serialize one column at a time off the arrays, then
    # transpose, instead of paying a dict materialization per row.
    columns = []
    for name in names:
        vec = table.column_vector(name)
        columns.append(
            [
                CNULL_TOKEN if cn else "" if nu else _serialize(v)
                for v, nu, cn in zip(
                    vec.values.tolist(), vec.null.tolist(), vec.cnull.tolist(), strict=True
                )
            ]
        )
    writer.writerows(zip(*columns, strict=True))


def read_csv(source: Path | str | TextIO, name: str, schema: Schema) -> Table:
    """Load a CSV with a header row into a new table validated by *schema*.

    The header must list exactly the schema's columns (any order).
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            return _read(handle, name, schema)
    return _read(source, name, schema)


def _read(handle: TextIO, name: str, schema: Schema) -> Table:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV is empty; expected a header row") from None
    expected = set(schema.column_names)
    if set(header) != expected:
        raise ValueError(
            f"CSV header {header!r} does not match schema columns {sorted(expected)!r}"
        )
    # Columnar import: parse into per-column lists, then one bulk
    # insert_columns call so validation and array encoding are batched.
    ctypes = [schema.column(col_name).ctype for col_name in header]
    columns: list[list[Any]] = [[] for _ in header]
    for line_no, record in enumerate(reader, start=2):
        if len(record) != len(header):
            raise ValueError(f"line {line_no}: expected {len(header)} fields, got {len(record)}")
        for out, text, ctype in zip(columns, record, ctypes, strict=True):
            out.append(_parse(text, ctype))
    table = Table(name, schema)
    if columns and columns[0]:
        table.insert_columns(dict(zip(header, columns, strict=True)))
    return table


def table_to_csv_string(table: Table) -> str:
    """Serialize *table* to a CSV string (useful in tests and examples)."""
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


def table_from_csv_string(text: str, name: str, schema: Schema) -> Table:
    """Parse a CSV string produced by :func:`table_to_csv_string`."""
    return read_csv(io.StringIO(text), name, schema)
