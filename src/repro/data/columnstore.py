"""Columnar storage: one typed numpy array per column plus NULL/CNULL masks.

This is the physical layer beneath :class:`~repro.data.table.Table`. Each
column holds

* ``values`` — a typed numpy array (``int64`` / ``float64`` / ``bool`` for
  the numeric types, ``object`` for strings and for integers that overflow
  64 bits),
* ``null``  — a boolean mask, True where the cell is SQL NULL,
* ``cnull`` — a boolean mask, True where the cell is crowd-unknown (CNULL).

Masked slots keep a type-consistent fill value (0 / 0.0 / False / None) so
whole-column kernels can run without branching; the masks are the source of
truth. Rows are identified by *rowid* (stable, never reused); deletion
tombstones the physical slot and the store compacts when more than half the
slots are dead. Cell reads always return plain Python values (``int``,
``float``, ``bool``, ``str``, ``None``, :data:`~repro.data.schema.CNULL`) so
nothing downstream ever sees a numpy scalar.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.data.schema import CNULL, ColumnType, Schema, is_cnull

_MIN_CAPACITY = 8
_COMPACT_MIN_DEAD = 64

#: numpy dtype per column type; STRING (and overflowing INTEGER) use object.
_DTYPES: dict[ColumnType, Any] = {
    ColumnType.INTEGER: np.int64,
    ColumnType.FLOAT: np.float64,
    ColumnType.BOOLEAN: np.bool_,
    ColumnType.STRING: object,
}

_FILL: dict[ColumnType, Any] = {
    ColumnType.INTEGER: 0,
    ColumnType.FLOAT: 0.0,
    ColumnType.BOOLEAN: False,
    ColumnType.STRING: None,
}


@dataclass
class ColumnVector:
    """One column's live cells: values plus parallel NULL/CNULL masks.

    ``values`` entries at masked positions hold the column's fill value and
    must be ignored; consumers branch on the masks, never on the fill.
    """

    values: np.ndarray
    null: np.ndarray
    cnull: np.ndarray

    def __len__(self) -> int:
        return len(self.values)

    @property
    def defined(self) -> np.ndarray:
        """Mask of cells that are neither NULL nor CNULL."""
        return ~(self.null | self.cnull)

    def cell(self, index: int) -> Any:
        """The cell at *index* as a plain Python value."""
        if self.cnull[index]:
            return CNULL
        if self.null[index]:
            return None
        value = self.values[index]
        return value if self.values.dtype == object else value.item()

    def to_list(self) -> list[Any]:
        """Materialize as Python values (None / CNULL markers included)."""
        return [self.cell(i) for i in range(len(self.values))]


class _Column:
    """Physical storage for one column (growable arrays + masks)."""

    __slots__ = ("ctype", "values", "null", "cnull")

    def __init__(self, ctype: ColumnType, capacity: int = _MIN_CAPACITY):
        self.ctype = ctype
        self.values = np.full(capacity, _FILL[ctype], dtype=_DTYPES[ctype])
        self.null = np.zeros(capacity, dtype=np.bool_)
        self.cnull = np.zeros(capacity, dtype=np.bool_)

    def grow(self, capacity: int) -> None:
        values = np.full(capacity, _FILL[self.ctype], dtype=self.values.dtype)
        values[: len(self.values)] = self.values
        self.values = values
        for attr in ("null", "cnull"):
            old = getattr(self, attr)
            fresh = np.zeros(capacity, dtype=np.bool_)
            fresh[: len(old)] = old
            setattr(self, attr, fresh)

    def promote_to_object(self) -> None:
        """Widen a numeric column to object dtype (e.g. >64-bit integers)."""
        self.values = self.values.astype(object)

    def set(self, slot: int, value: Any) -> None:
        if is_cnull(value):
            self.cnull[slot] = True
            self.null[slot] = False
            self.values[slot] = _FILL[self.ctype]
        elif value is None:
            self.null[slot] = True
            self.cnull[slot] = False
            self.values[slot] = _FILL[self.ctype]
        else:
            self.null[slot] = False
            self.cnull[slot] = False
            try:
                self.values[slot] = value
            except OverflowError:
                self.promote_to_object()
                self.values[slot] = value

    def get(self, slot: int) -> Any:
        if self.cnull[slot]:
            return CNULL
        if self.null[slot]:
            return None
        value = self.values[slot]
        return value if self.values.dtype == object else value.item()


def _encode_values(
    ctype: ColumnType, raw: Sequence[Any]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack validated Python values into (values, null, cnull) arrays."""
    n = len(raw)
    null = np.zeros(n, dtype=np.bool_)
    cnull = np.zeros(n, dtype=np.bool_)
    fill = _FILL[ctype]
    packed: list[Any] = [fill] * n
    for i, value in enumerate(raw):
        if value is None:
            null[i] = True
        elif is_cnull(value):
            cnull[i] = True
        else:
            packed[i] = value
    try:
        values = np.asarray(packed, dtype=_DTYPES[ctype])
    except OverflowError:
        values = np.asarray(packed, dtype=object)
    return values, null, cnull


class ColumnStore:
    """Growable columnar storage addressed by rowid.

    Physical slots are append-only; :meth:`delete` tombstones a slot and the
    store compacts (rebuilding the rowid→slot map) once dead slots dominate.
    Insertion order of live rows is always preserved.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._columns: dict[str, _Column] = {
            c.name: _Column(c.ctype) for c in schema.columns
        }
        self._capacity = _MIN_CAPACITY
        self._rowids = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self._alive = np.zeros(_MIN_CAPACITY, dtype=np.bool_)
        self._slot_of: dict[int, int] = {}
        self._length = 0  # physical slots in use (live + dead)
        self._dead = 0
        self._order: np.ndarray | None = None  # cached live slots, insertion order

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length - self._dead

    def __contains__(self, rowid: int) -> bool:
        return rowid in self._slot_of

    def live_slots(self) -> np.ndarray:
        """Physical slots of live rows, in insertion order."""
        if self._order is None:
            if self._dead == 0:
                self._order = np.arange(self._length, dtype=np.int64)
            else:
                self._order = np.flatnonzero(self._alive[: self._length]).astype(np.int64)
        return self._order

    def rowids(self) -> np.ndarray:
        """Rowids of live rows, in insertion order."""
        return self._rowids[self.live_slots()]

    def iter_rowids(self) -> Iterator[int]:
        """Iterate live rowids as plain ints, in insertion order."""
        for rowid in self.rowids():
            yield int(rowid)

    def column_vector(self, name: str) -> ColumnVector:
        """The named column's live cells as a :class:`ColumnVector`.

        Zero-copy (array views) while no rows have been deleted; a fancy-
        indexed copy otherwise.
        """
        col = self._columns[name]
        order = self.live_slots()
        if self._dead == 0:
            n = self._length
            return ColumnVector(col.values[:n], col.null[:n], col.cnull[:n])
        return ColumnVector(col.values[order], col.null[order], col.cnull[order])

    # ------------------------------------------------------------------ #
    # Cell access
    # ------------------------------------------------------------------ #

    def _slot(self, rowid: int) -> int:
        return self._slot_of[rowid]

    def cell(self, rowid: int, column: str) -> Any:
        """One cell as a plain Python value (or None / CNULL)."""
        return self._columns[column].get(self._slot_of[rowid])

    def set_cell(self, rowid: int, column: str, value: Any) -> None:
        """Overwrite one cell with an already-validated value."""
        self._columns[column].set(self._slot_of[rowid], value)

    def row_dict(self, rowid: int) -> dict[str, Any]:
        """Materialize one row as a schema-ordered dict of Python values."""
        slot = self._slot_of[rowid]
        return {name: col.get(slot) for name, col in self._columns.items()}

    def row_has_cnull(self, rowid: int) -> bool:
        """True if any cell of the row is crowd-unknown."""
        slot = self._slot_of[rowid]
        return any(col.cnull[slot] for col in self._columns.values())

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._length + extra
        if needed <= self._capacity:
            return
        capacity = max(self._capacity, _MIN_CAPACITY)
        while capacity < needed:
            capacity *= 2
        for col in self._columns.values():
            col.grow(capacity)
        for attr, fill_dtype in (("_rowids", np.int64), ("_alive", np.bool_)):
            old = getattr(self, attr)
            fresh = np.zeros(capacity, dtype=fill_dtype)
            fresh[: len(old)] = old
            setattr(self, attr, fresh)
        self._capacity = capacity

    def append(self, rowid: int, values: dict[str, Any]) -> None:
        """Append one validated row under *rowid* (must be unused)."""
        self._ensure_capacity(1)
        slot = self._length
        for name, col in self._columns.items():
            col.set(slot, values[name])
        self._rowids[slot] = rowid
        self._alive[slot] = True
        self._slot_of[rowid] = slot
        self._length += 1
        self._order = None

    def extend(self, rowids: Sequence[int], columns: dict[str, Sequence[Any]]) -> None:
        """Bulk-append validated rows given as per-column value sequences."""
        n = len(rowids)
        if n == 0:
            return
        self._ensure_capacity(n)
        start, stop = self._length, self._length + n
        for name, col in self._columns.items():
            values, null, cnull = _encode_values(col.ctype, columns[name])
            if values.dtype == object and col.values.dtype != object:
                col.promote_to_object()
            elif col.values.dtype == object and values.dtype != object:
                values = values.astype(object)
            col.values[start:stop] = values
            col.null[start:stop] = null
            col.cnull[start:stop] = cnull
        self._rowids[start:stop] = rowids
        self._alive[start:stop] = True
        for offset, rowid in enumerate(rowids):
            self._slot_of[rowid] = start + offset
        self._length = stop
        self._order = None

    def delete(self, rowid: int) -> None:
        """Tombstone a row (compacting when dead slots dominate)."""
        slot = self._slot_of.pop(rowid)
        self._alive[slot] = False
        self._dead += 1
        self._order = None
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > self._length:
            self._compact()

    def clear(self) -> None:
        """Drop all rows (storage is retained for reuse)."""
        self._slot_of.clear()
        self._alive[: self._length] = False
        self._length = 0
        self._dead = 0
        self._order = None

    def _compact(self) -> None:
        """Drop tombstoned slots, preserving live insertion order."""
        keep = np.flatnonzero(self._alive[: self._length])
        n = len(keep)
        for col in self._columns.values():
            col.values[:n] = col.values[keep]
            col.null[:n] = col.null[keep]
            col.cnull[:n] = col.cnull[keep]
            col.values[n : self._length] = _FILL[col.ctype]
            col.null[n : self._length] = False
            col.cnull[n : self._length] = False
        self._rowids[:n] = self._rowids[keep]
        self._alive[:n] = True
        self._alive[n : self._length] = False
        self._length = n
        self._dead = 0
        self._slot_of = {int(rowid): slot for slot, rowid in enumerate(self._rowids[:n])}
        self._order = None

    # ------------------------------------------------------------------ #
    # Whole-table queries (mask popcounts — no row walks)
    # ------------------------------------------------------------------ #

    def cnull_count(self, columns: Iterable[str] | None = None) -> int:
        """Number of live crowd-unknown cells, from mask popcounts."""
        names = list(columns) if columns is not None else list(self._columns)
        total = 0
        for name in names:
            mask = self._columns[name].cnull[: self._length]
            if self._dead:
                mask = mask & self._alive[: self._length]
            total += int(np.count_nonzero(mask))
        return total

    def cnull_cells(self, columns: Sequence[str]) -> list[tuple[int, str]]:
        """Live (rowid, column) pairs with CNULL cells, in row-major order.

        Row-major (all of row 1's cells before row 2's) matches what a
        tuple-at-a-time walk produced, so task-generation order — and hence
        every downstream RNG draw — is unchanged.
        """
        if not columns:
            return []
        order = self.live_slots()
        if len(order) == 0:
            return []
        stacked = np.stack(
            [self._columns[name].cnull[: self._length][order] for name in columns],
            axis=1,
        )
        row_pos, col_pos = np.nonzero(stacked)
        if len(row_pos) == 0:
            return []
        rowids = self._rowids[order[row_pos]]
        return [
            (int(rowid), columns[int(c)])
            for rowid, c in zip(rowids, col_pos, strict=True)
        ]

    # ------------------------------------------------------------------ #
    # Copy
    # ------------------------------------------------------------------ #

    def copy(self) -> ColumnStore:
        """Deep copy (arrays and maps); rowids and order are preserved."""
        clone = ColumnStore(self.schema)
        clone._capacity = self._capacity
        clone._length = self._length
        clone._dead = self._dead
        clone._rowids = self._rowids.copy()
        clone._alive = self._alive.copy()
        clone._slot_of = dict(self._slot_of)
        clone._order = None
        for name, col in self._columns.items():
            fresh = _Column(col.ctype)
            fresh.values = col.values.copy()
            fresh.null = col.null.copy()
            fresh.cnull = col.cnull.copy()
            clone._columns[name] = fresh
        return clone


__all__ = ["ColumnStore", "ColumnVector"]
