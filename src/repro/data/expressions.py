"""Expression trees evaluated over rows.

These expressions power WHERE clauses, projections, and join conditions in
the CrowdSQL executor, and are also usable directly against
:class:`~repro.data.table.Row` objects.

Three-valued-ish logic: comparisons involving SQL NULL yield ``None``
(unknown); comparisons involving CNULL yield the sentinel
:data:`CROWD_UNKNOWN`, which the executor interprets as "a crowd task is
needed to decide this predicate". Boolean connectives propagate both kinds
of unknown with standard Kleene rules, treating CROWD_UNKNOWN as the more
informative of the two (AND(False, crowd-unknown) is False; AND(True,
crowd-unknown) is crowd-unknown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.data.schema import is_cnull
from repro.errors import ExpressionError


class _CrowdUnknown:
    """Sentinel: predicate truth requires a crowd task."""

    _instance: "_CrowdUnknown | None" = None

    def __new__(cls) -> "_CrowdUnknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CROWD_UNKNOWN"

    def __bool__(self) -> bool:
        return False


#: Truth value meaning "ask the crowd to decide".
CROWD_UNKNOWN = _CrowdUnknown()


def is_crowd_unknown(value: Any) -> bool:
    """True if *value* is the CROWD_UNKNOWN sentinel."""
    return value is CROWD_UNKNOWN


class Expression:
    """Base class for expression nodes."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate against *row*: a value, None (NULL), or CROWD_UNKNOWN."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of columns this expression reads."""
        return set()

    # Builder sugar so tests/examples can write col("a") == lit(3) etc.
    def __eq__(self, other: object):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other: object):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: object):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: object):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: object):
        return Comparison(">=", self, _wrap(other))

    def __and__(self, other: "Expression"):
        return And(self, _wrap(other))

    def __or__(self, other: "Expression"):
        return Or(self, _wrap(other))

    def __invert__(self):
        return Not(self)

    def __hash__(self) -> int:
        return id(self)


def _wrap(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(eq=False)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(eq=False)
class ColumnRef(Expression):
    """Reference to a column of the input row."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(f"row has no column {self.name!r}") from None

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(eq=False)
class Comparison(Expression):
    """Binary comparison with NULL / CNULL propagation."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if is_cnull(lhs) or is_cnull(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        try:
            return _COMPARATORS[self.op](lhs, rhs)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {lhs!r} {self.op} {rhs!r}: {exc}"
            ) from None

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class And(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        # Short-circuit only on definite False.
        if lhs is False:
            return False
        rhs = self.right.evaluate(row)
        if rhs is False:
            return False
        if is_crowd_unknown(lhs) or is_crowd_unknown(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        return True

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(eq=False)
class Or(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        if lhs is True:
            return True
        rhs = self.right.evaluate(row)
        if rhs is True:
            return True
        if is_crowd_unknown(lhs) or is_crowd_unknown(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        return False

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(eq=False)
class Not(Expression):
    operand: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        if is_crowd_unknown(val):
            return CROWD_UNKNOWN
        if val is None:
            return None
        return not val

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(eq=False)
class IsNull(Expression):
    """SQL ``x IS NULL`` — True for NULL, False otherwise (CNULL is not NULL)."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        result = val is None
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(eq=False)
class IsCNull(Expression):
    """CrowdSQL ``x IS CNULL`` — True when the cell is crowd-unknown."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        result = is_cnull(val)
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IS {'NOT ' if self.negated else ''}CNULL)"


@dataclass(eq=False)
class InList(Expression):
    """SQL ``x IN (v1, v2, ...)`` over literal lists."""

    operand: Expression
    values: tuple[Any, ...]
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        if is_cnull(val):
            return CROWD_UNKNOWN
        if val is None:
            return None
        result = val in self.values
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} {'NOT ' if self.negated else ''}IN {self.values!r})"


@dataclass(eq=False)
class Arithmetic(Expression):
    """Binary arithmetic (+, -, *, /) with NULL/CNULL propagation."""

    op: str
    left: Expression
    right: Expression

    _OPS: dict[str, Callable[[Any, Any], Any]] = None  # type: ignore[assignment]

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if is_cnull(lhs) or is_cnull(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        try:
            if self.op == "+":
                return lhs + rhs
            if self.op == "-":
                return lhs - rhs
            if self.op == "*":
                return lhs * rhs
            if self.op == "/":
                if rhs == 0:
                    return None
                return lhs / rhs
        except TypeError as exc:
            raise ExpressionError(f"cannot compute {lhs!r} {self.op} {rhs!r}: {exc}") from None
        raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class CrowdPredicate(Expression):
    """A predicate the machine cannot evaluate: CROWDEQUAL / crowd UDF.

    During plain evaluation it always yields :data:`CROWD_UNKNOWN`; the
    executor detects these nodes and routes them to the platform. ``kind``
    distinguishes the Qurk-style crowd comparators:

    * ``"equal"``   — CROWDEQUAL(a, b): do these refer to the same entity?
    * ``"order"``   — CROWDORDER(a, b): should a rank before b?
    * ``"filter"``  — CROWDFILTER(a, question): does a satisfy the question?
    """

    kind: str
    operands: tuple[Expression, ...]
    question: str = ""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return CROWD_UNKNOWN

    def operand_values(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        """Materialize operand values for task generation."""
        return tuple(op.evaluate(row) for op in self.operands)

    def columns(self) -> set[str]:
        cols: set[str] = set()
        for op in self.operands:
            cols |= op.columns()
        return cols

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operands)
        return f"CROWD{self.kind.upper()}({inner})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def contains_crowd_predicate(expr: Expression) -> bool:
    """True if any node of *expr* is a :class:`CrowdPredicate`."""
    if isinstance(expr, CrowdPredicate):
        return True
    for attr in ("left", "right", "operand"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expression) and contains_crowd_predicate(child):
            return True
    if isinstance(expr, CrowdPredicate):
        return True
    operands = getattr(expr, "operands", ())
    return any(
        isinstance(child, Expression) and contains_crowd_predicate(child)
        for child in operands
    )


def split_conjuncts(expr: Expression) -> list[Expression]:
    """Flatten a tree of ANDs into its conjunct list."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expression]) -> Expression:
    """Rebuild a conjunction from a non-empty conjunct list."""
    if not conjuncts:
        raise ExpressionError("cannot conjoin an empty list")
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = And(expr, part)
    return expr
