"""Expression trees evaluated over rows — or vectorized over whole columns.

These expressions power WHERE clauses, projections, and join conditions in
the CrowdSQL executor, and are also usable directly against
:class:`~repro.data.table.Row` objects.

Three-valued-ish logic: comparisons involving SQL NULL yield ``None``
(unknown); comparisons involving CNULL yield the sentinel
:data:`CROWD_UNKNOWN`, which the executor interprets as "a crowd task is
needed to decide this predicate". Boolean connectives propagate both kinds
of unknown with standard Kleene rules, treating CROWD_UNKNOWN as the more
informative of the two (AND(False, crowd-unknown) is False; AND(True,
crowd-unknown) is crowd-unknown).

Every expression also has a *vectorized* evaluation path
(:func:`evaluate_vector` / :func:`evaluate_tristate` / :func:`evaluate_mask`)
that runs over a batch of :class:`~repro.data.columnstore.ColumnVector`
columns at numpy speed. The tri-state result is carried as three parallel
boolean masks (truth / NULL / CNULL) with exactly the same propagation rules
as the row path; machine-side scans, filters, and join pre-passes use this to
avoid per-row Python dispatch entirely.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.data.schema import is_cnull
from repro.errors import ExpressionError


class _CrowdUnknown:
    """Sentinel: predicate truth requires a crowd task."""

    _instance: "_CrowdUnknown | None" = None

    def __new__(cls) -> "_CrowdUnknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CROWD_UNKNOWN"

    def __bool__(self) -> bool:
        return False


#: Truth value meaning "ask the crowd to decide".
CROWD_UNKNOWN = _CrowdUnknown()


def is_crowd_unknown(value: Any) -> bool:
    """True if *value* is the CROWD_UNKNOWN sentinel."""
    return value is CROWD_UNKNOWN


class Expression:
    """Base class for expression nodes."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate against *row*: a value, None (NULL), or CROWD_UNKNOWN."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of columns this expression reads."""
        return set()

    # Builder sugar so tests/examples can write col("a") == lit(3) etc.
    def __eq__(self, other: object):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other: object):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: object):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: object):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: object):
        return Comparison(">=", self, _wrap(other))

    def __and__(self, other: "Expression"):
        return And(self, _wrap(other))

    def __or__(self, other: "Expression"):
        return Or(self, _wrap(other))

    def __invert__(self):
        return Not(self)

    def __hash__(self) -> int:
        return id(self)


def _wrap(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(eq=False)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(eq=False)
class ColumnRef(Expression):
    """Reference to a column of the input row."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(f"row has no column {self.name!r}") from None

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(eq=False)
class Comparison(Expression):
    """Binary comparison with NULL / CNULL propagation."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if is_cnull(lhs) or is_cnull(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        try:
            return _COMPARATORS[self.op](lhs, rhs)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {lhs!r} {self.op} {rhs!r}: {exc}"
            ) from None

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class And(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        # Short-circuit only on definite False.
        if lhs is False:
            return False
        rhs = self.right.evaluate(row)
        if rhs is False:
            return False
        if is_crowd_unknown(lhs) or is_crowd_unknown(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        return True

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(eq=False)
class Or(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        if lhs is True:
            return True
        rhs = self.right.evaluate(row)
        if rhs is True:
            return True
        if is_crowd_unknown(lhs) or is_crowd_unknown(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        return False

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(eq=False)
class Not(Expression):
    operand: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        if is_crowd_unknown(val):
            return CROWD_UNKNOWN
        if val is None:
            return None
        return not val

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(eq=False)
class IsNull(Expression):
    """SQL ``x IS NULL`` — True for NULL, False otherwise (CNULL is not NULL)."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        result = val is None
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(eq=False)
class IsCNull(Expression):
    """CrowdSQL ``x IS CNULL`` — True when the cell is crowd-unknown."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        result = is_cnull(val)
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IS {'NOT ' if self.negated else ''}CNULL)"


@dataclass(eq=False)
class InList(Expression):
    """SQL ``x IN (v1, v2, ...)`` over literal lists."""

    operand: Expression
    values: tuple[Any, ...]
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        if is_cnull(val):
            return CROWD_UNKNOWN
        if val is None:
            return None
        result = val in self.values
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} {'NOT ' if self.negated else ''}IN {self.values!r})"


@dataclass(eq=False)
class Like(Expression):
    """SQL ``x LIKE pattern`` — ``%`` matches any run, ``_`` one character.

    Case-sensitive, per the SQL standard default. NULL operands yield NULL;
    CNULL operands yield :data:`CROWD_UNKNOWN`; non-string operands raise.
    """

    operand: Expression
    pattern: str
    negated: bool = False

    def __post_init__(self) -> None:
        self._regex = re.compile(translate_like(self.pattern), re.DOTALL)

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        val = self.operand.evaluate(row)
        if is_cnull(val):
            return CROWD_UNKNOWN
        if val is None:
            return None
        if not isinstance(val, str):
            raise ExpressionError(f"LIKE requires a string operand, got {val!r}")
        result = self._regex.match(val) is not None
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} {'NOT ' if self.negated else ''}LIKE {self.pattern!r})"


def translate_like(pattern: str) -> str:
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    parts = ["\\A"]
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    parts.append("\\Z")
    return "".join(parts)


@dataclass(eq=False)
class Arithmetic(Expression):
    """Binary arithmetic (+, -, *, /) with NULL/CNULL propagation."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if is_cnull(lhs) or is_cnull(rhs):
            return CROWD_UNKNOWN
        if lhs is None or rhs is None:
            return None
        try:
            if self.op == "+":
                return lhs + rhs
            if self.op == "-":
                return lhs - rhs
            if self.op == "*":
                return lhs * rhs
            if self.op == "/":
                if rhs == 0:
                    return None
                return lhs / rhs
        except TypeError as exc:
            raise ExpressionError(f"cannot compute {lhs!r} {self.op} {rhs!r}: {exc}") from None
        raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class CrowdPredicate(Expression):
    """A predicate the machine cannot evaluate: CROWDEQUAL / crowd UDF.

    During plain evaluation it always yields :data:`CROWD_UNKNOWN`; the
    executor detects these nodes and routes them to the platform. ``kind``
    distinguishes the Qurk-style crowd comparators:

    * ``"equal"``   — CROWDEQUAL(a, b): do these refer to the same entity?
    * ``"order"``   — CROWDORDER(a, b): should a rank before b?
    * ``"filter"``  — CROWDFILTER(a, question): does a satisfy the question?
    """

    kind: str
    operands: tuple[Expression, ...]
    question: str = ""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return CROWD_UNKNOWN

    def operand_values(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        """Materialize operand values for task generation."""
        return tuple(op.evaluate(row) for op in self.operands)

    def columns(self) -> set[str]:
        cols: set[str] = set()
        for op in self.operands:
            cols |= op.columns()
        return cols

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operands)
        return f"CROWD{self.kind.upper()}({inner})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def contains_crowd_predicate(expr: Expression) -> bool:
    """True if any node of *expr* is a :class:`CrowdPredicate`."""
    if isinstance(expr, CrowdPredicate):
        return True
    for attr in ("left", "right", "operand"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expression) and contains_crowd_predicate(child):
            return True
    if isinstance(expr, CrowdPredicate):
        return True
    operands = getattr(expr, "operands", ())
    return any(
        isinstance(child, Expression) and contains_crowd_predicate(child)
        for child in operands
    )


def split_conjuncts(expr: Expression) -> list[Expression]:
    """Flatten a tree of ANDs into its conjunct list."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


# ---------------------------------------------------------------------- #
# Vectorized evaluation
# ---------------------------------------------------------------------- #
#
# A batch is a Mapping[str, ColumnVector] (see repro.data.columnstore): for
# every referenced column, a values array plus parallel NULL/CNULL boolean
# masks. Evaluation produces a _Vec — values plus the same two masks — with
# tri-state semantics identical to the row path:
#
#   * predicates carry their truth in a boolean ``values`` array, valid only
#     where both masks are False;
#   * a True ``cnull`` bit corresponds to the row path's CROWD_UNKNOWN, a
#     True ``null`` bit to SQL NULL (None);
#   * AND/OR implement the same asymmetric Kleene rules: definite False
#     (resp. True) dominates both kinds of unknown, and CNULL dominates NULL.


@dataclass
class _Vec:
    """One vectorized evaluation result: values + NULL/CNULL masks."""

    values: np.ndarray
    null: np.ndarray
    cnull: np.ndarray

    @property
    def defined(self) -> np.ndarray:
        return ~(self.null | self.cnull)


_NUMPY_COMPARATORS: dict[str, Any] = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _as_bool_array(result: Any, n: int) -> np.ndarray:
    """Coerce a ufunc result (possibly object-dtype or scalar) to bool[n]."""
    arr = np.asarray(result)
    if arr.dtype != np.bool_:
        arr = arr.astype(np.bool_)
    if arr.ndim == 0:
        return np.full(n, bool(arr), dtype=np.bool_)
    return arr


def _vec_compare(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise comparison mirroring the row path's ``_COMPARATORS``."""
    try:
        return _as_bool_array(_NUMPY_COMPARATORS[op](a, b), len(a))
    except TypeError as exc:
        if op in ("=", "!="):
            # Python equality never raises across types (1 == "a" is False);
            # numpy's ufunc does for some dtype pairs, so fall back.
            fn = _COMPARATORS[op]
            return np.fromiter(
                (fn(x, y) for x, y in zip(a, b, strict=True)), np.bool_, len(a)
            )
        raise ExpressionError(f"cannot compare values with {op!r}: {exc}") from None


def _literal_vec(value: Any, n: int) -> _Vec:
    no = np.zeros(n, dtype=np.bool_)
    if is_cnull(value):
        return _Vec(np.full(n, None, dtype=object), no, np.ones(n, dtype=np.bool_))
    if value is None:
        return _Vec(np.full(n, None, dtype=object), np.ones(n, dtype=np.bool_), no)
    if isinstance(value, bool):
        values = np.full(n, value, dtype=np.bool_)
    elif isinstance(value, int):
        try:
            values = np.full(n, value, dtype=np.int64)
        except OverflowError:
            values = np.full(n, value, dtype=object)
    elif isinstance(value, float):
        values = np.full(n, value, dtype=np.float64)
    else:
        values = np.full(n, value, dtype=object)
    return _Vec(values, no, no)


def _masked_pair(left: _Vec, right: _Vec, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CNULL-dominant mask combination shared by comparisons/arithmetic."""
    cnull = left.cnull | right.cnull
    null = (left.null | right.null) & ~cnull
    defined = ~(cnull | null)
    return cnull, null, defined


def evaluate_vector(expr: Expression, batch: Mapping[str, Any], n: int) -> _Vec:
    """Evaluate *expr* over an *n*-row column batch; returns values + masks.

    Exactly mirrors per-row :meth:`Expression.evaluate` semantics; see the
    module docstring for the mask conventions.
    """
    if isinstance(expr, Literal):
        return _literal_vec(expr.value, n)

    if isinstance(expr, ColumnRef):
        try:
            col = batch[expr.name]
        except KeyError:
            raise ExpressionError(f"row has no column {expr.name!r}") from None
        return _Vec(col.values, col.null, col.cnull)

    if isinstance(expr, Comparison):
        left = evaluate_vector(expr.left, batch, n)
        right = evaluate_vector(expr.right, batch, n)
        cnull, null, defined = _masked_pair(left, right, n)
        truth = np.zeros(n, dtype=np.bool_)
        idx = np.flatnonzero(defined)
        if idx.size:
            truth[idx] = _vec_compare(expr.op, left.values[idx], right.values[idx])
        return _Vec(truth, null, cnull)

    if isinstance(expr, And):
        left = _truth_of(evaluate_vector(expr.left, batch, n))
        right = _truth_of(evaluate_vector(expr.right, batch, n))
        false = (left.defined & ~left.values) | (right.defined & ~right.values)
        cnull = (left.cnull | right.cnull) & ~false
        null = (left.null | right.null) & ~false & ~cnull
        return _Vec(~(false | cnull | null), null, cnull)

    if isinstance(expr, Or):
        left = _truth_of(evaluate_vector(expr.left, batch, n))
        right = _truth_of(evaluate_vector(expr.right, batch, n))
        true = (left.defined & left.values) | (right.defined & right.values)
        cnull = (left.cnull | right.cnull) & ~true
        null = (left.null | right.null) & ~true & ~cnull
        return _Vec(true, null, cnull)

    if isinstance(expr, Not):
        operand = _truth_of(evaluate_vector(expr.operand, batch, n))
        return _Vec(operand.defined & ~operand.values, operand.null, operand.cnull)

    if isinstance(expr, IsNull):
        operand = evaluate_vector(expr.operand, batch, n)
        result = ~operand.null if expr.negated else operand.null.copy()
        no = np.zeros(n, dtype=np.bool_)
        return _Vec(result, no, no)

    if isinstance(expr, IsCNull):
        operand = evaluate_vector(expr.operand, batch, n)
        result = ~operand.cnull if expr.negated else operand.cnull.copy()
        no = np.zeros(n, dtype=np.bool_)
        return _Vec(result, no, no)

    if isinstance(expr, InList):
        operand = evaluate_vector(expr.operand, batch, n)
        truth = np.zeros(n, dtype=np.bool_)
        idx = np.flatnonzero(operand.defined)
        if idx.size:
            sub = operand.values[idx]
            if sub.dtype == object:
                # Memoize tuple membership per distinct cell value — the row
                # path's ``val in values`` verbatim, paid once per distinct
                # value instead of once per row.
                seen: dict[Any, bool] = {}
                member = np.empty(idx.size, dtype=np.bool_)
                in_values = expr.values
                for k, val in enumerate(sub):
                    hit = seen.get(val)
                    if hit is None:
                        seen[val] = hit = val in in_values
                    member[k] = hit
            else:
                member = np.zeros(idx.size, dtype=np.bool_)
                for value in expr.values:
                    still = ~member
                    if not still.any():
                        break
                    rest = sub[still]
                    try:
                        hits = _as_bool_array(np.equal(rest, value), rest.size)
                    except (TypeError, ValueError, OverflowError):
                        # Cross-type value (e.g. a string against a numeric
                        # column): python `==` semantics, elementwise.
                        hits = _vec_compare(
                            "=", rest, np.full(rest.size, value, dtype=object)
                        )
                    member[still] = hits
            truth[idx] = ~member if expr.negated else member
        return _Vec(truth, operand.null.copy(), operand.cnull.copy())

    if isinstance(expr, Like):
        operand = evaluate_vector(expr.operand, batch, n)
        truth = np.zeros(n, dtype=np.bool_)
        idx = np.flatnonzero(operand.defined)
        if idx.size:
            regex = expr._regex
            matches = np.empty(idx.size, dtype=np.bool_)
            # LIKE columns are typically categorical; memoizing the regex
            # verdict per distinct string turns the per-row match into a
            # dict hit without changing semantics for high-cardinality data.
            memo: dict[str, bool] = {}
            for k, value in enumerate(operand.values[idx]):
                hit = memo.get(value)
                if hit is None:
                    if not isinstance(value, str):
                        raise ExpressionError(
                            f"LIKE requires a string operand, got {value!r}"
                        )
                    memo[value] = hit = regex.match(value) is not None
                matches[k] = hit
            truth[idx] = ~matches if expr.negated else matches
        return _Vec(truth, operand.null.copy(), operand.cnull.copy())

    if isinstance(expr, Arithmetic):
        left = evaluate_vector(expr.left, batch, n)
        right = evaluate_vector(expr.right, batch, n)
        if expr.op not in ("+", "-", "*", "/"):
            raise ExpressionError(f"unknown arithmetic operator {expr.op!r}")
        cnull, null, defined = _masked_pair(left, right, n)
        null = null.copy()
        idx = np.flatnonzero(defined)
        values: np.ndarray = np.zeros(n, dtype=np.float64)
        if idx.size:
            a, b = left.values[idx], right.values[idx]
            # Python semantics for booleans (True + True == 2), not numpy's
            # saturating bool arithmetic.
            if a.dtype == np.bool_:
                a = a.astype(object)
            if b.dtype == np.bool_:
                b = b.astype(object)
            try:
                if expr.op == "/":
                    zero = _as_bool_array(np.equal(b, 0), idx.size)
                    null[idx[zero]] = True
                    keep = ~zero
                    idx = idx[keep]
                    out = np.true_divide(a[keep], b[keep])
                elif expr.op == "+":
                    out = np.add(a, b)
                elif expr.op == "-":
                    out = np.subtract(a, b)
                else:
                    out = np.multiply(a, b)
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot compute {expr.op!r} over columns: {exc}"
                ) from None
            out = np.asarray(out)
            values = np.zeros(n, dtype=out.dtype if out.dtype != np.bool_ else object)
            if idx.size:
                values[idx] = out
        return _Vec(values, null, cnull)

    if isinstance(expr, CrowdPredicate):
        no = np.zeros(n, dtype=np.bool_)
        return _Vec(np.zeros(n, dtype=np.bool_), no, np.ones(n, dtype=np.bool_))

    raise ExpressionError(
        f"no vectorized evaluation for expression {type(expr).__name__}"
    )


def _truth_of(vec: _Vec) -> _Vec:
    """Reduce a value vector to predicate truth (``is True`` semantics)."""
    if vec.values.dtype == np.bool_:
        return vec
    if vec.values.dtype == object:
        truth = np.fromiter(
            (v is True for v in vec.values), np.bool_, len(vec.values)
        )
        return _Vec(truth, vec.null, vec.cnull)
    # Numeric values are never `is True` on the row path.
    return _Vec(np.zeros(len(vec.values), dtype=np.bool_), vec.null, vec.cnull)


def evaluate_tristate(
    expr: Expression, batch: Mapping[str, Any], n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate a predicate over a batch; returns (true, null, cnull) masks.

    ``true[i]`` corresponds to the row path returning exactly ``True`` for
    row *i*; ``null[i]`` to ``None``; ``cnull[i]`` to ``CROWD_UNKNOWN``.
    The masks are mutually exclusive (not necessarily exhaustive: a definite
    False row has all three bits clear).
    """
    vec = _truth_of(evaluate_vector(expr, batch, n))
    return vec.values & vec.defined, vec.null, vec.cnull


def evaluate_mask(expr: Expression, batch: Mapping[str, Any], n: int) -> np.ndarray:
    """Definite-True mask for *expr* over a batch (what a WHERE keeps)."""
    true, _null, _cnull = evaluate_tristate(expr, batch, n)
    return true


def conjoin(conjuncts: list[Expression]) -> Expression:
    """Rebuild a conjunction from a non-empty conjunct list."""
    if not conjuncts:
        raise ExpressionError("cannot conjoin an empty list")
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = And(expr, part)
    return expr
