"""In-memory tables with crowd-aware semantics.

A :class:`Table` stores rows conforming to a :class:`~repro.data.schema.Schema`.
Rows are immutable-by-convention dicts; mutation goes through the table API so
primary-key indexes and CNULL bookkeeping stay consistent.

The table tracks which cells are crowd-unknown (CNULL) so the engine can
enumerate outstanding crowd work cheaply (:meth:`Table.cnull_cells`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.data.schema import CNULL, Schema, is_cnull
from repro.errors import KeyViolationError, UnknownColumnError


class Row:
    """A single tuple of a table.

    Thin wrapper over a dict that supports attribute-free, ordered access and
    keeps a stable ``rowid`` assigned by its table (unique within the table,
    never reused).
    """

    __slots__ = ("rowid", "_values")

    def __init__(self, rowid: int, values: dict[str, Any]):
        self.rowid = rowid
        self._values = values

    def __getitem__(self, column: str) -> Any:
        try:
            return self._values[column]
        except KeyError:
            raise UnknownColumnError(f"row has no column {column!r}") from None

    def __contains__(self, column: str) -> bool:
        return column in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, dict):
            return self._values == other
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Row#{self.rowid}({inner})"

    def get(self, column: str, default: Any = None) -> Any:
        """Value of *column*, or *default* when absent."""
        return self._values.get(column, default)

    def as_dict(self) -> dict[str, Any]:
        """Return a copy of the row's values."""
        return dict(self._values)

    def values(self) -> tuple[Any, ...]:
        """Cell values in schema order."""
        return tuple(self._values.values())

    def has_cnull(self) -> bool:
        """True if any cell is crowd-unknown."""
        return any(is_cnull(v) for v in self._values.values())


class Table:
    """A named, schema-validated collection of rows.

    Args:
        name: Table name (used by the catalog and CrowdSQL).
        schema: The table's schema.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._rows: dict[int, Row] = {}
        self._next_rowid = 1
        self._pk_index: dict[tuple[Any, ...], int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __repr__(self) -> str:
        return f"Table<{self.name}, {len(self)} rows>"

    @property
    def rows(self) -> list[Row]:
        """All rows in insertion order."""
        return list(self._rows.values())

    def row(self, rowid: int) -> Row:
        """Return the row with the given rowid."""
        try:
            return self._rows[rowid]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no rowid {rowid}") from None

    def _pk_tuple(self, values: dict[str, Any]) -> tuple[Any, ...] | None:
        if not self.schema.primary_key:
            return None
        return tuple(values[k] for k in self.schema.primary_key)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, values: dict[str, Any]) -> Row:
        """Validate and insert one row; returns the stored :class:`Row`.

        Crowd columns omitted from *values* default to CNULL; primary-key
        duplicates raise :class:`KeyViolationError`.
        """
        validated = self.schema.validate_row(values)
        pk = self._pk_tuple(validated)
        if pk is not None:
            if any(v is None or is_cnull(v) for v in pk):
                raise KeyViolationError(
                    f"table {self.name!r}: primary key columns cannot be NULL/CNULL"
                )
            if pk in self._pk_index:
                raise KeyViolationError(
                    f"table {self.name!r}: duplicate primary key {pk!r}"
                )
        rowid = self._next_rowid
        self._next_rowid += 1
        row = Row(rowid, validated)
        self._rows[rowid] = row
        if pk is not None:
            self._pk_index[pk] = rowid
        return row

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> list[Row]:
        """Insert several rows; returns the stored rows."""
        return [self.insert(r) for r in rows]

    def update_cell(self, rowid: int, column: str, value: Any) -> None:
        """Set one cell, validating against the column type.

        This is the hook crowd answers flow through when resolving CNULLs;
        primary-key columns cannot be updated.
        """
        row = self.row(rowid)
        col = self.schema.column(column)
        if column in self.schema.primary_key:
            raise KeyViolationError(f"cannot update primary key column {column!r}")
        row._values[column] = col.validate(value)

    def delete(self, rowid: int) -> None:
        """Remove the row with the given rowid."""
        row = self._rows.pop(rowid, None)
        if row is None:
            raise KeyError(f"table {self.name!r} has no rowid {rowid}")
        pk = self._pk_tuple(row._values)
        if pk is not None:
            self._pk_index.pop(pk, None)

    def clear(self) -> None:
        """Remove all rows (rowids are not reused)."""
        self._rows.clear()
        self._pk_index.clear()

    # ------------------------------------------------------------------ #
    # Query helpers
    # ------------------------------------------------------------------ #

    def lookup(self, **key_values: Any) -> Row | None:
        """Primary-key lookup; returns None if absent.

        All primary-key columns must be supplied as keyword arguments.
        """
        if set(key_values) != set(self.schema.primary_key):
            raise KeyViolationError(
                f"lookup requires exactly the primary key columns "
                f"{self.schema.primary_key!r}"
            )
        pk = tuple(key_values[k] for k in self.schema.primary_key)
        rowid = self._pk_index.get(pk)
        return self._rows.get(rowid) if rowid is not None else None

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> Iterator[Row]:
        """Yield rows, optionally filtered by *predicate*."""
        for row in self._rows.values():
            if predicate is None or predicate(row):
                yield row

    def cnull_cells(self) -> list[tuple[int, str]]:
        """Enumerate (rowid, column) pairs whose value is crowd-unknown."""
        cells = []
        crowd_cols = [c.name for c in self.schema.crowd_columns]
        for row in self._rows.values():
            for col in crowd_cols:
                if is_cnull(row[col]):
                    cells.append((row.rowid, col))
        return cells

    def completeness(self) -> float:
        """Fraction of crowd-column cells that are resolved (non-CNULL).

        Returns 1.0 for tables without crowd columns or without rows.
        """
        crowd_cols = [c.name for c in self.schema.crowd_columns]
        total = len(self._rows) * len(crowd_cols)
        if total == 0:
            return 1.0
        unresolved = len(self.cnull_cells())
        return 1.0 - unresolved / total

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize all rows as plain dicts (CNULL markers preserved)."""
        return [row.as_dict() for row in self._rows.values()]

    def copy(self, name: str | None = None) -> "Table":
        """Deep-ish copy: new table object with copied row dicts."""
        clone = Table(name or self.name, self.schema)
        for row in self._rows.values():
            clone.insert(row.as_dict())
        return clone


def make_table(name: str, schema: Schema, rows: Iterable[dict[str, Any]] = ()) -> Table:
    """Convenience constructor: build a table and bulk-insert *rows*."""
    table = Table(name, schema)
    table.insert_many(rows)
    return table


__all__ = ["Row", "Table", "make_table", "CNULL"]
