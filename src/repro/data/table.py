"""In-memory tables with crowd-aware semantics, on columnar storage.

A :class:`Table` stores rows conforming to a :class:`~repro.data.schema.Schema`.
Physically the data lives in a :class:`~repro.data.columnstore.ColumnStore`
(one typed numpy array per column plus NULL/CNULL bitmasks); the :class:`Row`
objects handed out by the table are thin *views* over that store, so the
historical tuple-at-a-time API — ``scan``, ``lookup``, ``row``, cell access —
keeps working unchanged while whole-column operations (vectorized predicate
evaluation, mask popcounts, hash joins) run at numpy speed.

The table tracks which cells are crowd-unknown (CNULL) so the engine can
enumerate outstanding crowd work cheaply (:meth:`Table.cnull_cells`, now a
mask scan instead of a full-table walk).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.data.columnstore import ColumnStore, ColumnVector
from repro.data.expressions import Expression, evaluate_mask
from repro.data.schema import CNULL, Schema, is_cnull
from repro.errors import KeyViolationError, TypeMismatchError, UnknownColumnError


class Row:
    """A single tuple of a table.

    A lightweight view over the table's column store that supports
    attribute-free, ordered access and keeps a stable ``rowid`` assigned by
    its table (unique within the table, never reused). Reads always reflect
    the store's current state, exactly like the dict-backed rows of old.
    """

    __slots__ = ("rowid", "_store")

    def __init__(self, rowid: int, store: ColumnStore):
        self.rowid = rowid
        self._store = store

    def __getitem__(self, column: str) -> Any:
        try:
            return self._store.cell(self.rowid, column)
        except KeyError:
            raise UnknownColumnError(f"row has no column {column!r}") from None

    def __contains__(self, column: str) -> bool:
        return column in self._store.schema

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.schema.column_names)

    def __len__(self) -> int:
        return len(self._store.schema)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.as_dict() == other.as_dict()
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"Row#{self.rowid}({inner})"

    def get(self, column: str, default: Any = None) -> Any:
        """Value of *column*, or *default* when absent."""
        if column not in self._store.schema:
            return default
        return self._store.cell(self.rowid, column)

    def as_dict(self) -> dict[str, Any]:
        """Materialize the row's values as a plain dict."""
        return self._store.row_dict(self.rowid)

    def values(self) -> tuple[Any, ...]:
        """Cell values in schema order."""
        return tuple(self._store.row_dict(self.rowid).values())

    def has_cnull(self) -> bool:
        """True if any cell is crowd-unknown."""
        return self._store.row_has_cnull(self.rowid)


class Table:
    """A named, schema-validated collection of rows.

    Args:
        name: Table name (used by the catalog and CrowdSQL).
        schema: The table's schema.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._store = ColumnStore(schema)
        self._next_rowid = 1
        self._pk_index: dict[tuple[Any, ...], int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Row]:
        store = self._store
        for rowid in store.iter_rowids():
            yield Row(rowid, store)

    def __repr__(self) -> str:
        return f"Table<{self.name}, {len(self)} rows>"

    @property
    def rows(self) -> list[Row]:
        """All rows in insertion order."""
        return list(self)

    @property
    def store(self) -> ColumnStore:
        """The underlying columnar store (read-mostly; mutate via the table)."""
        return self._store

    def row(self, rowid: int) -> Row:
        """Return the row with the given rowid."""
        if rowid not in self._store:
            raise KeyError(f"table {self.name!r} has no rowid {rowid}")
        return Row(rowid, self._store)

    def rowids(self) -> np.ndarray:
        """Rowids of all live rows, in insertion order."""
        return self._store.rowids()

    def column_vector(self, name: str) -> ColumnVector:
        """One column's cells (insertion order) as arrays + masks."""
        self.schema.column(name)
        return self._store.column_vector(name)

    def _pk_tuple(self, values: dict[str, Any]) -> tuple[Any, ...] | None:
        if not self.schema.primary_key:
            return None
        return tuple(values[k] for k in self.schema.primary_key)

    def _check_pk(self, pk: tuple[Any, ...]) -> None:
        if any(v is None or is_cnull(v) for v in pk):
            raise KeyViolationError(
                f"table {self.name!r}: primary key columns cannot be NULL/CNULL"
            )
        if pk in self._pk_index:
            raise KeyViolationError(
                f"table {self.name!r}: duplicate primary key {pk!r}"
            )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, values: dict[str, Any]) -> Row:
        """Validate and insert one row; returns the stored :class:`Row`.

        Crowd columns omitted from *values* default to CNULL; primary-key
        duplicates raise :class:`KeyViolationError`.
        """
        validated = self.schema.validate_row(values)
        pk = self._pk_tuple(validated)
        if pk is not None:
            self._check_pk(pk)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._store.append(rowid, validated)
        if pk is not None:
            self._pk_index[pk] = rowid
        return Row(rowid, self._store)

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> list[Row]:
        """Insert several rows; returns the stored rows."""
        return [self.insert(r) for r in rows]

    def insert_columns(self, columns: dict[str, Sequence[Any]]) -> np.ndarray:
        """Bulk-insert column-oriented data; returns the new rowids.

        Semantically identical to calling :meth:`insert` once per row (same
        validation, same defaults for omitted columns, same primary-key
        rules) but validates column-at-a-time, skipping per-row dict
        shuffling — the fast path for loaders and benchmarks.
        """
        for key in columns:
            if key not in self.schema:
                raise UnknownColumnError(
                    f"no column {key!r}; available: {', '.join(self.schema.column_names)}"
                )
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        n = lengths.pop() if lengths else 0
        if n == 0:
            return np.empty(0, dtype=np.int64)

        validated: dict[str, list[Any]] = {}
        for col in self.schema.columns:
            if col.name in columns:
                raw = list(columns[col.name])
                # Fast path: exact-type cells skip the per-value validator;
                # anything else (None, CNULL, coercions, errors) goes through
                # Column.validate for byte-identical semantics and messages.
                fast = _FAST_TYPE[col.ctype.value]
                for i, value in enumerate(raw):
                    if type(value) is not fast:
                        raw[i] = col.validate(value)
                validated[col.name] = raw
            elif col.crowd:
                validated[col.name] = [CNULL] * n
            elif col.nullable:
                validated[col.name] = [None] * n
            else:
                raise TypeMismatchError(f"missing value for NOT NULL column {col.name!r}")

        rowids = np.arange(self._next_rowid, self._next_rowid + n, dtype=np.int64)
        if self.schema.primary_key:
            key_cols = [validated[k] for k in self.schema.primary_key]
            new_keys: dict[tuple[Any, ...], int] = {}
            for offset, pk in enumerate(zip(*key_cols, strict=True)):
                self._check_pk(pk)
                if pk in new_keys:
                    raise KeyViolationError(
                        f"table {self.name!r}: duplicate primary key {pk!r}"
                    )
                new_keys[pk] = int(rowids[offset])
            self._pk_index.update(new_keys)
        self._next_rowid += n
        self._store.extend([int(r) for r in rowids], validated)
        return rowids

    def update_cell(self, rowid: int, column: str, value: Any) -> None:
        """Set one cell, validating against the column type.

        This is the hook crowd answers flow through when resolving CNULLs;
        primary-key columns cannot be updated.
        """
        if rowid not in self._store:
            raise KeyError(f"table {self.name!r} has no rowid {rowid}")
        col = self.schema.column(column)
        if column in self.schema.primary_key:
            raise KeyViolationError(f"cannot update primary key column {column!r}")
        self._store.set_cell(rowid, column, col.validate(value))

    def delete(self, rowid: int) -> None:
        """Remove the row with the given rowid."""
        if rowid not in self._store:
            raise KeyError(f"table {self.name!r} has no rowid {rowid}")
        if self.schema.primary_key:
            pk = self._pk_tuple(self._store.row_dict(rowid))
            self._pk_index.pop(pk, None)
        self._store.delete(rowid)

    def clear(self) -> None:
        """Remove all rows (rowids are not reused)."""
        self._store.clear()
        self._pk_index.clear()

    # ------------------------------------------------------------------ #
    # Query helpers
    # ------------------------------------------------------------------ #

    def lookup(self, **key_values: Any) -> Row | None:
        """Primary-key lookup; returns None if absent.

        All primary-key columns must be supplied as keyword arguments.
        """
        if set(key_values) != set(self.schema.primary_key):
            raise KeyViolationError(
                f"lookup requires exactly the primary key columns "
                f"{self.schema.primary_key!r}"
            )
        pk = tuple(key_values[k] for k in self.schema.primary_key)
        rowid = self._pk_index.get(pk)
        return Row(rowid, self._store) if rowid is not None else None

    def scan(
        self, predicate: Callable[[Row], bool] | Expression | None = None
    ) -> Iterator[Row]:
        """Yield rows, optionally filtered by *predicate*.

        A plain callable is applied row-at-a-time as before; an
        :class:`~repro.data.expressions.Expression` is evaluated vectorized
        over whole columns (rows where it is definitely True survive —
        NULL and CNULL outcomes are excluded, matching SQL semantics).
        """
        if predicate is None:
            yield from self
        elif isinstance(predicate, Expression):
            store = self._store
            for rowid in self.filter_rowids(predicate):
                yield Row(int(rowid), store)
        else:
            for row in self:
                if predicate(row):
                    yield row

    def filter_rowids(self, expression: Expression) -> np.ndarray:
        """Rowids (insertion order) where *expression* is definitely True.

        The vectorized equivalent of
        ``[r.rowid for r in table if expression.evaluate(r) is True]``.
        """
        n = len(self._store)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        names = expression.columns()
        for name in names:
            self.schema.column(name)
        batch = {name: self._store.column_vector(name) for name in names}
        mask = evaluate_mask(expression, batch, n)
        return self._store.rowids()[mask]

    def cnull_cells(self) -> list[tuple[int, str]]:
        """Enumerate (rowid, column) pairs whose value is crowd-unknown.

        Row-major order (matching the historical full-table walk) so crowd
        task generation — and every downstream RNG draw — is unchanged.
        """
        crowd_cols = [c.name for c in self.schema.crowd_columns]
        return self._store.cnull_cells(crowd_cols)

    def cnull_count(self) -> int:
        """Number of unresolved crowd cells (mask popcount, no row walk)."""
        return self._store.cnull_count([c.name for c in self.schema.crowd_columns])

    def completeness(self) -> float:
        """Fraction of crowd-column cells that are resolved (non-CNULL).

        Returns 1.0 for tables without crowd columns or without rows.
        """
        crowd_cols = self.schema.crowd_columns
        total = len(self) * len(crowd_cols)
        if total == 0:
            return 1.0
        return 1.0 - self.cnull_count() / total

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize all rows as plain dicts (CNULL markers preserved)."""
        store = self._store
        return [store.row_dict(rowid) for rowid in store.iter_rowids()]

    def copy(self, name: str | None = None) -> Table:
        """Independent copy sharing nothing with the original.

        Rowids are preserved (clone.row(i) corresponds to self.row(i)), as is
        the next-rowid counter — checkpoints and caches that reference rowids
        stay valid against a clone.
        """
        clone = Table(name or self.name, self.schema)
        clone._store = self._store.copy()
        clone._next_rowid = self._next_rowid
        clone._pk_index = dict(self._pk_index)
        return clone


#: Exact Python type per column type for the bulk-insert fast path.
_FAST_TYPE = {"string": str, "integer": int, "float": float, "boolean": bool}


def make_table(name: str, schema: Schema, rows: Iterable[dict[str, Any]] = ()) -> Table:
    """Convenience constructor: build a table and bulk-insert *rows*."""
    table = Table(name, schema)
    table.insert_many(rows)
    return table


__all__ = ["Row", "Table", "make_table", "CNULL"]
