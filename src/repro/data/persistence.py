"""Database persistence: save/load a catalog to a directory.

Layout: one ``<table>.csv`` per table (CNULL-aware, via
:mod:`repro.data.csvio`) plus a ``catalog.json`` describing schemas —
enough to round-trip every table including crowd columns and primary keys.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.csvio import read_csv, write_csv
from repro.data.database import Database
from repro.data.schema import Column, ColumnType, Schema

CATALOG_FILE = "catalog.json"


def _schema_to_dict(schema: Schema) -> dict:
    return {
        "columns": [
            {
                "name": c.name,
                "type": c.ctype.value,
                "crowd": c.crowd,
                "nullable": c.nullable,
            }
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "crowd_table": schema.crowd_table,
    }


def _schema_from_dict(data: dict) -> Schema:
    columns = [
        Column(
            c["name"],
            ColumnType(c["type"]),
            crowd=c.get("crowd", False),
            nullable=c.get("nullable", True),
        )
        for c in data["columns"]
    ]
    return Schema(
        columns,
        primary_key=tuple(data.get("primary_key", ())),
        crowd_table=data.get("crowd_table", False),
    )


def save_database(database: Database, directory: Path | str) -> None:
    """Write *database* (catalog + all rows) under *directory*.

    The directory is created if needed; existing files for the same table
    names are overwritten, other files are left alone.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    catalog = {
        "name": database.name,
        "tables": {
            table.name: _schema_to_dict(table.schema) for table in database
        },
    }
    (root / CATALOG_FILE).write_text(json.dumps(catalog, indent=2), encoding="utf-8")
    for table in database:
        write_csv(table, root / f"{table.name}.csv")


def load_database(directory: Path | str) -> Database:
    """Reconstruct a database previously written by :func:`save_database`."""
    root = Path(directory)
    catalog_path = root / CATALOG_FILE
    if not catalog_path.exists():
        raise FileNotFoundError(f"no {CATALOG_FILE} in {root}")
    catalog = json.loads(catalog_path.read_text(encoding="utf-8"))
    database = Database(catalog.get("name", "crowddm"))
    for table_name, schema_dict in catalog.get("tables", {}).items():
        schema = _schema_from_dict(schema_dict)
        csv_path = root / f"{table_name}.csv"
        if not csv_path.exists():
            raise FileNotFoundError(f"catalog lists {table_name!r} but {csv_path} is missing")
        loaded = read_csv(csv_path, table_name, schema)
        table = database.create_table(table_name, schema)
        if len(loaded):
            # Bulk column transfer instead of a per-row insert loop.
            table.insert_columns(
                {name: loaded.column_vector(name).to_list() for name in schema.column_names}
            )
    return database
