"""Relation schemas with crowd-powered column support.

This module implements the CrowdDB-style data model the SIGMOD'17 tutorial
describes: ordinary relational schemas extended with *crowd columns* (values
the machine may not know and must ask the crowd for) and *crowd tables*
(whole relations whose membership is open-world).

A :class:`Schema` is an ordered collection of :class:`Column` objects plus an
optional primary key. Crowd-unknown values are represented by the singleton
:data:`CNULL`, which is distinct from Python ``None`` (SQL NULL): ``None``
means "known to be missing", ``CNULL`` means "ask the crowd".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError


class _CNullType:
    """Singleton marker for crowd-unknown values (CrowdDB's CNULL)."""

    _instance: "_CNullType | None" = None

    def __new__(cls) -> "_CNullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CNULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_CNullType, ())


#: The crowd-unknown marker. A cell holding CNULL is eligible for crowd fill.
CNULL = _CNullType()


def is_cnull(value: Any) -> bool:
    """Return True if *value* is the crowd-unknown marker."""
    return value is CNULL


class ColumnType(enum.Enum):
    """Supported column types for the relational substrate."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this type, raising TypeMismatchError on failure.

        ``None`` (SQL NULL) and :data:`CNULL` pass through unchanged.
        Integers are accepted for FLOAT columns; bools are *not* accepted
        for INTEGER columns (a common silent-bug source in Python).
        """
        if value is None or is_cnull(value):
            return value
        if self is ColumnType.STRING:
            if isinstance(value, str):
                return value
        elif self is ColumnType.INTEGER:
            if isinstance(value, bool):
                raise TypeMismatchError(f"boolean {value!r} is not a valid INTEGER")
            if isinstance(value, int):
                return value
        elif self is ColumnType.FLOAT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"boolean {value!r} is not a valid FLOAT")
            if isinstance(value, (int, float)):
                return float(value)
        elif self is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
        raise TypeMismatchError(
            f"value {value!r} (type {type(value).__name__}) is not a valid {self.value.upper()}"
        )


@dataclass(frozen=True)
class Column:
    """One column of a relation schema.

    Attributes:
        name: Column name; must be a valid identifier-like string.
        ctype: Declared :class:`ColumnType`.
        crowd: True for CrowdDB-style ``CROWD`` columns — cells default to
            CNULL and may be filled by crowd tasks.
        nullable: Whether SQL NULL is allowed. Crowd columns are always
            nullable in the CNULL sense regardless of this flag.
    """

    name: str
    ctype: ColumnType
    crowd: bool = False
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")

    def validate(self, value: Any) -> Any:
        """Validate *value* for this column, applying nullability rules."""
        if is_cnull(value):
            if not self.crowd:
                raise TypeMismatchError(
                    f"column {self.name!r} is not a CROWD column; CNULL not allowed"
                )
            return value
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(f"column {self.name!r} is NOT NULL")
            return value
        return self.ctype.validate(value)


class Schema:
    """An ordered, named collection of columns with an optional primary key.

    Args:
        columns: The columns, in order. Names must be unique.
        primary_key: Names of key columns (subset of column names).
        crowd_table: True for ``CREATE CROWD TABLE`` relations whose
            membership is open-world (the crowd may add rows).
    """

    def __init__(
        self,
        columns: Iterable[Column],
        primary_key: Iterable[str] = (),
        crowd_table: bool = False,
    ):
        self._columns: list[Column] = list(columns)
        if not self._columns:
            raise SchemaError("a schema requires at least one column")
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column name(s): {', '.join(dupes)}")
        self._by_name = {c.name: c for c in self._columns}
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        for key_col in self.primary_key:
            if key_col not in self._by_name:
                raise SchemaError(f"primary key column {key_col!r} not in schema")
            if self._by_name[key_col].crowd:
                raise SchemaError(f"primary key column {key_col!r} cannot be a CROWD column")
        self.crowd_table = crowd_table

    @property
    def columns(self) -> tuple[Column, ...]:
        return tuple(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    @property
    def crowd_columns(self) -> tuple[Column, ...]:
        """Columns the crowd may be asked to fill."""
        return tuple(c for c in self._columns if c.crowd)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._columns == other._columns
            and self.primary_key == other.primary_key
            and self.crowd_table == other.crowd_table
        )

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{c.name} {c.ctype.value}" + (" CROWD" if c.crowd else "") for c in self._columns
        )
        kind = "CROWD TABLE" if self.crowd_table else "TABLE"
        return f"Schema<{kind}({cols})>"

    def column(self, name: str) -> Column:
        """Return the column named *name*, raising UnknownColumnError if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"no column {name!r}; available: {', '.join(self.column_names)}"
            ) from None

    def index_of(self, name: str) -> int:
        """Return the position of column *name* within the schema."""
        self.column(name)
        return self.column_names.index(name)

    def validate_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Validate and complete a row dict against this schema.

        Unknown keys raise; missing crowd columns default to CNULL; missing
        nullable columns default to None; missing NOT NULL columns raise.
        Returns a new dict with columns in schema order.
        """
        for key in values:
            if key not in self._by_name:
                raise UnknownColumnError(
                    f"no column {key!r}; available: {', '.join(self.column_names)}"
                )
        row: dict[str, Any] = {}
        for col in self._columns:
            if col.name in values:
                row[col.name] = col.validate(values[col.name])
            elif col.crowd:
                row[col.name] = CNULL
            elif col.nullable:
                row[col.name] = None
            else:
                raise TypeMismatchError(f"missing value for NOT NULL column {col.name!r}")
        return row

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema containing only *names*, in the given order."""
        cols = [self.column(n) for n in names]
        kept = set(n for n in names)
        key = self.primary_key if all(k in kept for k in self.primary_key) else ()
        return Schema(cols, primary_key=key, crowd_table=self.crowd_table)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed per *mapping*."""
        cols = []
        for c in self._columns:
            new_name = mapping.get(c.name, c.name)
            cols.append(Column(new_name, c.ctype, crowd=c.crowd, nullable=c.nullable))
        key = tuple(mapping.get(k, k) for k in self.primary_key)
        return Schema(cols, primary_key=key, crowd_table=self.crowd_table)

    def join(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Concatenate two schemas for a join result.

        Name clashes are resolved with the given prefixes (``prefix + '.' +
        name`` style using ``_`` as the separator to stay identifier-safe).
        """
        cols: list[Column] = []
        self_names = set(self.column_names)
        other_names = set(other.column_names)
        clashes = self_names & other_names
        for c in self._columns:
            name = f"{prefix_self}_{c.name}" if c.name in clashes and prefix_self else c.name
            cols.append(Column(name, c.ctype, crowd=c.crowd, nullable=c.nullable))
        for c in other.columns:
            name = f"{prefix_other}_{c.name}" if c.name in clashes and prefix_other else c.name
            cols.append(Column(name, c.ctype, crowd=c.crowd, nullable=c.nullable))
        return Schema(cols)


@dataclass
class SchemaBuilder:
    """Fluent helper for building schemas in examples and tests.

    Example:
        >>> schema = (SchemaBuilder()
        ...           .string("name")
        ...           .crowd_string("hometown")
        ...           .integer("age", nullable=True)
        ...           .key("name")
        ...           .build())
    """

    _columns: list[Column] = field(default_factory=list)
    _key: tuple[str, ...] = ()
    _crowd_table: bool = False

    def string(self, name: str, nullable: bool = True) -> "SchemaBuilder":
        """Append a STRING column."""
        self._columns.append(Column(name, ColumnType.STRING, nullable=nullable))
        return self

    def integer(self, name: str, nullable: bool = True) -> "SchemaBuilder":
        """Append an INTEGER column."""
        self._columns.append(Column(name, ColumnType.INTEGER, nullable=nullable))
        return self

    def float(self, name: str, nullable: bool = True) -> "SchemaBuilder":
        """Append a FLOAT column."""
        self._columns.append(Column(name, ColumnType.FLOAT, nullable=nullable))
        return self

    def boolean(self, name: str, nullable: bool = True) -> "SchemaBuilder":
        """Append a BOOLEAN column."""
        self._columns.append(Column(name, ColumnType.BOOLEAN, nullable=nullable))
        return self

    def crowd_string(self, name: str) -> "SchemaBuilder":
        """Append a crowd-filled STRING column."""
        self._columns.append(Column(name, ColumnType.STRING, crowd=True))
        return self

    def crowd_integer(self, name: str) -> "SchemaBuilder":
        """Append a crowd-filled INTEGER column."""
        self._columns.append(Column(name, ColumnType.INTEGER, crowd=True))
        return self

    def crowd_float(self, name: str) -> "SchemaBuilder":
        """Append a crowd-filled FLOAT column."""
        self._columns.append(Column(name, ColumnType.FLOAT, crowd=True))
        return self

    def crowd_boolean(self, name: str) -> "SchemaBuilder":
        """Append a crowd-filled BOOLEAN column."""
        self._columns.append(Column(name, ColumnType.BOOLEAN, crowd=True))
        return self

    def key(self, *names: str) -> "SchemaBuilder":
        """Declare the primary key columns."""
        self._key = names
        return self

    def crowd_table(self) -> "SchemaBuilder":
        """Mark the relation open-world (CREATE CROWD TABLE)."""
        self._crowd_table = True
        return self

    def build(self) -> Schema:
        """Produce the immutable Schema."""
        return Schema(self._columns, primary_key=self._key, crowd_table=self._crowd_table)
