"""Latency control: round model, statistical model, mitigation."""

from repro.latency.mitigation import (
    MitigationResult,
    RetainerPool,
    run_baseline,
    run_with_replication,
    run_with_straggler_rescue,
)
from repro.latency.rounds import (
    RoundOutcome,
    RoundRecord,
    RoundScheduler,
    rounds_lower_bound,
)
from repro.latency.statistical import (
    CompletionModel,
    fit_completion_model,
    predict_speedup_from_reward,
    straggler_threshold,
)

__all__ = [
    "CompletionModel",
    "MitigationResult",
    "RetainerPool",
    "RoundOutcome",
    "RoundRecord",
    "RoundScheduler",
    "fit_completion_model",
    "predict_speedup_from_reward",
    "rounds_lower_bound",
    "run_baseline",
    "run_with_replication",
    "run_with_straggler_rescue",
    "straggler_threshold",
]
