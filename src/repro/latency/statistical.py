"""Statistical completion-time model.

The second latency-control family the tutorial surveys: fit a distribution
to observed task completion times, then *predict* job completion and decide
interventions (raise pay, replicate stragglers) from the model rather than
waiting. We fit a lognormal by method-of-moments on log-times, which matches
the service-time generator in :mod:`repro.workers.worker` and, empirically,
real microtask platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompletionModel:
    """A fitted lognormal completion-time distribution."""

    mu: float       # mean of log-times
    sigma: float    # std of log-times
    n_observations: int

    @property
    def median(self) -> float:
        return math.exp(self.mu)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma ** 2 / 2.0)

    def quantile(self, q: float) -> float:
        """Inverse CDF via the normal quantile of log-time."""
        if not 0.0 < q < 1.0:
            raise ConfigurationError("quantile q must be in (0, 1)")
        from repro.cost.sampling import _z_for

        # _z_for returns the two-sided z; convert: for one-sided q we need
        # z such that Phi(z) = q.
        if q == 0.5:
            z = 0.0
        elif q > 0.5:
            z = _z_for(2.0 * q - 1.0)
        else:
            z = -_z_for(1.0 - 2.0 * q)
        return math.exp(self.mu + self.sigma * z)

    def probability_done_by(self, deadline: float) -> float:
        """P(one task finishes within *deadline*) under the fitted model."""
        if deadline <= 0:
            return 0.0
        z = (math.log(deadline) - self.mu) / max(self.sigma, 1e-9)
        return _phi(z)

    def expected_makespan(self, n_tasks: int, parallelism: int) -> float:
        """Rough makespan prediction: waves of *parallelism* tasks, each wave
        bounded by the max of *parallelism* draws (extreme-value estimate).
        """
        if n_tasks < 1 or parallelism < 1:
            raise ConfigurationError("n_tasks and parallelism must be >= 1")
        waves = -(-n_tasks // parallelism)
        # E[max of k lognormals] approximated via the k/(k+1) quantile.
        per_wave = self.quantile(parallelism / (parallelism + 1.0))
        return waves * per_wave


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def fit_completion_model(
    durations: Sequence[float], robust: bool = False
) -> CompletionModel:
    """Fit the lognormal to observed durations.

    Non-positive and non-finite durations are dropped before fitting;
    fewer than two usable samples raise a clean
    :class:`~repro.errors.ConfigurationError` instead of surfacing numpy
    degrees-of-freedom warnings or NaN parameters.

    ``robust=True`` fits by median/MAD of log-durations instead of
    mean/std. A contaminated sample — e.g. completion times that include a
    straggler-spiked tail — inflates the moment estimates enough that the
    fitted upper quantiles chase the outliers; the median/MAD fit tracks
    the clean body of the distribution, which is what the live hedging
    runtime (:class:`repro.platform.batch.BatchScheduler`) needs to
    recognize the outliers as stragglers at all.
    """
    cleaned = [d for d in durations if math.isfinite(d) and d > 0]
    if len(cleaned) < 2:
        raise ConfigurationError(
            "need at least two positive, finite durations to fit "
            f"(got {len(cleaned)} usable of {len(durations)})"
        )
    logs = np.log(np.asarray(cleaned, dtype=float))
    if robust:
        mu = float(np.median(logs))
        # 1.4826 * MAD estimates sigma consistently for a normal body.
        sigma = 1.4826 * float(np.median(np.abs(logs - mu)))
        if sigma <= 0.0:  # degenerate MAD (over half the sample identical)
            sigma = float(logs.std(ddof=1))
    else:
        mu = float(logs.mean())
        sigma = float(logs.std(ddof=1))
    return CompletionModel(mu=mu, sigma=sigma, n_observations=len(cleaned))


def straggler_threshold(model: CompletionModel, percentile: float = 0.9) -> float:
    """Duration beyond which a task counts as a straggler."""
    if model.n_observations < 2:
        raise ConfigurationError(
            "straggler threshold needs a model fitted on at least two "
            f"durations, got {model.n_observations}"
        )
    if not (math.isfinite(model.mu) and math.isfinite(model.sigma)):
        raise ConfigurationError(
            f"completion model parameters must be finite, got "
            f"mu={model.mu!r} sigma={model.sigma!r}"
        )
    return model.quantile(percentile)


def predict_speedup_from_reward(
    model: CompletionModel,
    current_reward: float,
    proposed_reward: float,
    elasticity: float = 0.6,
) -> float:
    """Predicted makespan ratio (old/new) from a pay raise.

    Combines the fitted service model with the log-linear supply response
    of :class:`repro.platform.pricing.PriceResponseModel`: more arrivals per
    second shrink queueing delay proportionally; service time is unchanged.
    """
    if current_reward <= 0 or proposed_reward <= 0:
        raise ConfigurationError("rewards must be positive")
    multiplier = 1.0 + elasticity * math.log(proposed_reward / current_reward)
    return max(0.1, multiplier)
