"""Straggler mitigation: replication and pool maintenance.

The tail of the completion-time distribution dominates crowdsourcing
makespan: one slow (or absent) worker holds the whole job. The surveyed
mitigations implemented here:

* :func:`run_with_replication` — issue r copies of every assignment and
  take the first answer per task ("hedged requests"); cuts tail latency
  for ~r× cost on the replicated fraction.
* :func:`run_with_straggler_rescue` — run once, detect assignments slower
  than a fitted straggler threshold, and re-issue only those.
* :class:`RetainerPool` — model of pre-recruited on-call workers
  (retainer pattern) that removes recruitment latency entirely for a flat
  standby fee.

These are *offline* timeline experiments over pre-collected answers. The
live equivalent — speculative re-issue of in-flight stragglers inside the
batch runtime, with first-answer-wins and cancellation refunds — is
:class:`repro.platform.batch.HedgeState` /
``BatchConfig(hedge_enabled=True)``, which fits the same lognormal models
online via :func:`~repro.latency.statistical.fit_completion_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.latency.statistical import fit_completion_model, straggler_threshold
from repro.platform.platform import SimulatedPlatform, TimelineResult
from repro.platform.task import Task


@dataclass
class MitigationResult:
    """Latency/cost outcome of a mitigation strategy."""

    makespan: float
    p50: float
    p95: float
    answers_used: int
    cost: float
    strategy: str

    @classmethod
    def from_timeline(
        cls, timeline: TimelineResult, cost: float, strategy: str
    ) -> "MitigationResult":
        return cls(
            makespan=timeline.makespan,
            p50=timeline.percentile(50),
            p95=timeline.percentile(95),
            answers_used=len(timeline.answers),
            cost=cost,
            strategy=strategy,
        )


def run_baseline(
    platform: SimulatedPlatform,
    tasks: Sequence[Task],
    redundancy: int = 1,
) -> MitigationResult:
    """No mitigation: one pass at the given redundancy."""
    before = platform.stats.cost_spent
    timeline = platform.simulate_timeline(tasks, redundancy=redundancy)
    return MitigationResult.from_timeline(
        timeline, platform.stats.cost_spent - before, "baseline"
    )


def run_with_replication(
    platform: SimulatedPlatform,
    tasks: Sequence[Task],
    replication: int = 2,
    redundancy: int = 1,
) -> MitigationResult:
    """Hedged execution: request ``redundancy * replication`` answers but
    count a task complete at its first *redundancy* answers.

    The timeline already credits completion at the redundancy-th answer;
    extra replicas only exist to make that answer arrive sooner.
    """
    if replication < 1:
        raise ConfigurationError("replication must be >= 1")
    before = platform.stats.cost_spent
    timeline = platform.simulate_timeline(
        tasks, redundancy=redundancy * replication
    )
    # Re-derive completion at the redundancy-th answer instead of the last.
    arrivals: dict[str, list[float]] = {}
    for answer in timeline.answers:
        arrivals.setdefault(answer.task_id, []).append(answer.submitted_at)
    completion = {}
    for task in tasks:
        times = sorted(arrivals.get(task.task_id, ()))
        if len(times) >= redundancy:
            completion[task.task_id] = times[redundancy - 1]
    hedged = TimelineResult(
        makespan=max(completion.values(), default=0.0),
        answers=timeline.answers,
        completion_times=completion,
    )
    return MitigationResult.from_timeline(
        hedged, platform.stats.cost_spent - before, f"replication_x{replication}"
    )


def run_with_straggler_rescue(
    platform: SimulatedPlatform,
    tasks: Sequence[Task],
    redundancy: int = 1,
    percentile: float = 0.75,
) -> MitigationResult:
    """Two-phase: run once, re-issue only assignments in the slow tail.

    Phase 1 runs all tasks; a completion model is fitted to the observed
    per-task times, tasks slower than the *percentile* threshold are
    re-issued in phase 2, and each straggler's completion is the earlier of
    its two runs. Cheaper than blanket replication when the tail is thin.
    """
    before = platform.stats.cost_spent
    first = platform.simulate_timeline(tasks, redundancy=redundancy)
    durations = list(first.completion_times.values())
    if len(durations) < 2:
        return MitigationResult.from_timeline(
            first, platform.stats.cost_spent - before, "straggler_rescue"
        )
    model = fit_completion_model(durations)
    threshold = straggler_threshold(model, percentile)
    stragglers = [
        t for t in tasks if first.completion_times.get(t.task_id, 0.0) > threshold
    ]
    completion = dict(first.completion_times)
    if stragglers:
        # Fresh task copies so platform bookkeeping stays per-task-id clean.
        clones = {
            t.task_id: Task(
                t.task_type,
                question=t.question,
                options=t.options,
                payload=dict(t.payload),
                truth=t.truth,
                difficulty=t.difficulty,
                reward=t.reward,
            )
            for t in stragglers
        }
        rescue = platform.simulate_timeline(list(clones.values()), redundancy=redundancy)
        for original_id, clone in clones.items():
            rescued = rescue.completion_times.get(clone.task_id)
            if rescued is not None:
                completion[original_id] = min(completion[original_id], rescued)
    merged = TimelineResult(
        makespan=max(completion.values(), default=0.0),
        answers=first.answers,
        completion_times=completion,
    )
    return MitigationResult.from_timeline(
        merged, platform.stats.cost_spent - before, "straggler_rescue"
    )


@dataclass
class RetainerPool:
    """Pre-recruited standby workers (the retainer latency pattern).

    Workers on retainer respond immediately (no arrival delay) in exchange
    for a standby wage. :meth:`expected_latency` and :meth:`expected_cost`
    quantify the trade against cold-start recruitment.
    """

    standby_workers: int
    standby_wage_per_second: float = 0.0005
    mean_service_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.standby_workers < 1:
            raise ConfigurationError("standby_workers must be >= 1")

    def expected_latency(self, n_tasks: int) -> float:
        """Service-bound makespan: waves of standby workers, no recruiting."""
        if n_tasks < 1:
            raise ConfigurationError("n_tasks must be >= 1")
        waves = -(-n_tasks // self.standby_workers)
        return waves * self.mean_service_seconds

    def expected_cost(self, n_tasks: int, task_reward: float) -> float:
        """Task payments plus standby wages for the job's duration."""
        duration = self.expected_latency(n_tasks)
        return n_tasks * task_reward + duration * self.standby_wage_per_second * self.standby_workers
