"""The round model of crowdsourcing latency.

Many crowd algorithms are inherently staged: answers from round i decide
what to ask in round i+1 (tournaments, iterative sorts, adaptive filters).
Under the round model, latency is measured in *rounds*, with each round's
wall-clock duration set by its slowest task. :class:`RoundScheduler` runs a
staged computation against the platform's event timeline and accounts for
both views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform, TimelineResult
from repro.platform.task import Answer, Task


@dataclass
class RoundRecord:
    """Timing and evidence for one executed round."""

    index: int
    tasks: int
    answers: list[Answer]
    duration: float
    completion: TimelineResult


@dataclass
class RoundOutcome:
    """Full accounting of a staged execution."""

    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def total_latency(self) -> float:
        return sum(r.duration for r in self.rounds)

    @property
    def total_answers(self) -> int:
        return sum(len(r.answers) for r in self.rounds)

    @property
    def critical_path(self) -> list[float]:
        return [r.duration for r in self.rounds]


class RoundScheduler:
    """Execute rounds of tasks, each gated on the previous round's answers.

    Args:
        platform: Supplies workers, answers, and the event clock.
        redundancy: Answers per task per round.
        use_batches: Run each round through the platform's batch runtime
            (:class:`~repro.platform.batch.BatchScheduler`) instead of the
            arrival-event timeline; the round's duration is then the batch
            makespan under ``max_parallel`` concurrent assignment lanes.
            None (default) auto-enables this when the platform has a
            parallel scheduler attached.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        redundancy: int = 1,
        use_batches: bool | None = None,
    ):
        if redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        if use_batches and platform.scheduler is None:
            raise ConfigurationError("use_batches requires a platform batch scheduler")
        self.platform = platform
        self.redundancy = redundancy
        self.use_batches = use_batches

    def _batched(self) -> bool:
        if self.use_batches is None:
            return self.platform.parallel_batching
        return self.use_batches

    def _run_round(self, tasks: Sequence[Task]) -> TimelineResult:
        if not self._batched():
            return self.platform.simulate_timeline(tasks, redundancy=self.redundancy)
        run = self.platform.scheduler.run(tasks, redundancy=self.redundancy)
        answers = [a for t in tasks for a in run.answers.get(t.task_id, [])]
        return TimelineResult(
            makespan=run.makespan,
            answers=answers,
            completion_times=run.completion_times,
        )

    def run(
        self,
        first_round: Sequence[Task],
        next_round: Callable[[list[Answer], int], Sequence[Task]],
        max_rounds: int = 64,
    ) -> RoundOutcome:
        """Run until *next_round* returns no tasks or *max_rounds* is hit.

        Args:
            first_round: Tasks of round 0.
            next_round: Callback ``(answers_of_previous_round, round_index)
                -> tasks`` generating the next round; return an empty
                sequence to stop.
            max_rounds: Safety cap.
        """
        outcome = RoundOutcome()
        tasks = list(first_round)
        index = 0
        tracer = self.platform.tracer
        metrics = self.platform.metrics
        sim_elapsed = 0.0
        while tasks:
            if index >= max_rounds:
                raise ConfigurationError(f"exceeded max_rounds={max_rounds}")
            with tracer.span(
                "round", sim_start=sim_elapsed, index=index, tasks=len(tasks)
            ) as span:
                timeline = self._run_round(tasks)
                span.set_tag("answers", len(timeline.answers))
                span.set_tag("duration", timeline.makespan)
                span.sim_end = sim_elapsed + timeline.makespan
            sim_elapsed += timeline.makespan
            metrics.observe("round.duration", timeline.makespan)
            record = RoundRecord(
                index=index,
                tasks=len(tasks),
                answers=timeline.answers,
                duration=timeline.makespan,
                completion=timeline,
            )
            outcome.rounds.append(record)
            index += 1
            tasks = list(next_round(record.answers, index))
        return outcome


def rounds_lower_bound(n_items: int, fan_in: int) -> int:
    """Rounds a fan-in-*f* tournament needs over *n_items* (ceil log_f n)."""
    if n_items < 1 or fan_in < 2:
        raise ConfigurationError("need n_items >= 1 and fan_in >= 2")
    rounds = 0
    remaining = n_items
    while remaining > 1:
        remaining = -(-remaining // fan_in)
        rounds += 1
    return rounds
