"""Trace sinks: where finished spans go.

A :class:`~repro.obs.tracer.Tracer` emits every finished span to exactly
one sink. Three implementations cover the use cases the tutorial's
observability story needs:

* :class:`JsonlSink` — one JSON object per line, flushed per span, so a
  crashed run still leaves a readable trace (the Reprowd auditability
  argument).
* :class:`MemorySink` — keeps span dicts in a list; tests and in-process
  report rendering read it directly.
* :class:`NullSink` — discards everything; used to measure the overhead of
  an *enabled* tracer separately from serialization cost.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ConfigurationError


class TraceSink:
    """Interface: receives finished-span dicts, in end order."""

    def emit(self, span: dict[str, Any]) -> None:
        """Receive one finished span. Subclasses must override."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any underlying resource (default: nothing to do)."""
        pass


class NullSink(TraceSink):
    """Discards spans (tracing machinery on, output off)."""

    def emit(self, span: dict[str, Any]) -> None:
        """Drop the span."""
        pass


class MemorySink(TraceSink):
    """Collects span dicts in memory, in emission order."""

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []

    def emit(self, span: dict[str, Any]) -> None:
        """Append the span to :attr:`spans`."""
        self.spans.append(span)


class JsonlSink(TraceSink):
    """Appends each span as one JSON line to *path*.

    The file is opened eagerly so an unwritable path fails at configuration
    time (a clean :class:`~repro.errors.ConfigurationError`), not midway
    through a paid crowd run.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._handle = open(path, "w", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot open trace file {path!r}: {exc}") from exc

    def emit(self, span: dict[str, Any]) -> None:
        """Write the span as one flushed JSON line."""
        self._handle.write(json.dumps(span, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()
