"""Trace analysis: parse a JSONL trace and render the run report.

``python -m repro trace-report FILE`` lands here. The report answers the
questions the tutorial's four pillars pose about a finished run: where
did the time go (per-operator and slowest spans), where did the money go
(per-operator cost), how reliable was execution (batch retry hotspots),
and how did inference behave (EM iterations and convergence deltas).
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Any, TextIO

from repro.errors import ConfigurationError

SpanDict = dict[str, Any]


def load_spans(path: str, warn: "TextIO | None" = None) -> list[SpanDict]:
    """Parse a JSONL trace file into span dicts (emission order).

    Corrupt or truncated lines — a killed run's last write, a partial
    flush — are **skipped with a one-line warning** on *warn* (stderr by
    default) rather than raising, so the rest of the trace still renders.
    Only an unreadable file is an error.
    """
    warn = warn if warn is not None else sys.stderr
    spans: list[SpanDict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    print(
                        f"warning: {path}:{number}: skipping non-JSON trace line "
                        f"({exc.msg})",
                        file=warn,
                    )
                    continue
                if not isinstance(record, dict) or "span_id" not in record:
                    print(
                        f"warning: {path}:{number}: skipping non-span record",
                        file=warn,
                    )
                    continue
                spans.append(record)
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {path!r}: {exc}") from exc
    return spans


def build_tree(spans: list[SpanDict]) -> dict[int | None, list[SpanDict]]:
    """children-by-parent-id index (roots under key ``None``)."""
    children: dict[int | None, list[SpanDict]] = defaultdict(list)
    for span in spans:
        children[span.get("parent_id")].append(span)
    return dict(children)


def _spans_named(spans: list[SpanDict], prefix: str) -> list[SpanDict]:
    return [s for s in spans if str(s.get("name", "")).startswith(prefix)]


def _operator_rows(spans: list[SpanDict]) -> list[dict[str, Any]]:
    grouped: dict[str, list[SpanDict]] = defaultdict(list)
    for span in _spans_named(spans, "operator."):
        if span.get("kind") == "span":
            grouped[span["name"]].append(span)
    rows = []
    for name in sorted(grouped):
        group = grouped[name]
        accuracies = [
            s["tags"]["accuracy"] for s in group if "accuracy" in s.get("tags", {})
        ]
        rows.append(
            {
                "operator": name.removeprefix("operator."),
                "runs": len(group),
                "wall_s": sum(s.get("duration", 0.0) for s in group),
                "cost": sum(s.get("tags", {}).get("cost", 0.0) for s in group),
                "answers": sum(s.get("tags", {}).get("answers", 0) for s in group),
                "accuracy": (
                    f"{sum(accuracies) / len(accuracies):.3f}" if accuracies else "-"
                ),
            }
        )
    return rows


def _batch_rows(spans: list[SpanDict]) -> tuple[list[dict[str, Any]], list[SpanDict]]:
    batches = [s for s in spans if s.get("name") == "batch" and s.get("kind") == "span"]
    if not batches:
        return [], []
    tags = [b.get("tags", {}) for b in batches]
    summary = [
        {
            "batches": len(batches),
            "dispatched": sum(t.get("dispatched", 0) for t in tags),
            "retried": sum(t.get("retried", 0) for t in tags),
            "timed_out": sum(t.get("timed_out", 0) for t in tags),
            "abandoned": sum(t.get("abandoned", 0) for t in tags),
            "sim_makespan_s": sum(t.get("makespan", 0.0) for t in tags),
        }
    ]
    hotspots = sorted(
        (b for b in batches if b.get("tags", {}).get("retried", 0) > 0),
        key=lambda b: b["tags"].get("retried", 0),
        reverse=True,
    )[:3]
    return summary, hotspots


def _em_rows(spans: list[SpanDict]) -> list[dict[str, Any]]:
    iteration_deltas: dict[int | None, list[float]] = defaultdict(list)
    for note in spans:
        if note.get("name") == "em.iteration":
            iteration_deltas[note.get("parent_id")].append(
                float(note.get("tags", {}).get("delta", 0.0))
            )
    grouped: dict[str, dict[str, Any]] = {}
    for span in _spans_named(spans, "truth."):
        if span.get("kind") != "span":
            continue
        name = span["name"].removeprefix("truth.")
        entry = grouped.setdefault(
            name, {"method": name, "runs": 0, "iterations": 0, "final_deltas": []}
        )
        entry["runs"] += 1
        deltas = iteration_deltas.get(span["span_id"], [])
        entry["iterations"] += len(deltas)
        if deltas:
            entry["final_deltas"].append(deltas[-1])
    rows = []
    for name in sorted(grouped):
        entry = grouped[name]
        deltas = entry.pop("final_deltas")
        entry["mean_final_delta"] = sum(deltas) / len(deltas) if deltas else 0.0
        rows.append(entry)
    return rows


def render_report(spans: list[SpanDict]) -> str:
    """The full human-readable trace report for *spans*."""
    # Imported lazily: experiments pulls in the platform package, which in
    # turn imports repro.obs — a cycle at module-import time.
    from repro.experiments.report import format_table

    if not spans:
        return "(empty trace)"
    real = [s for s in spans if s.get("kind") == "span"]
    annotations = [s for s in spans if s.get("kind") == "annotation"]
    roots = [s for s in real if s.get("parent_id") is None]
    sections: list[str] = []

    root_line = ", ".join(
        f"{r.get('name')} ({r.get('duration', 0.0):.3f}s wall)" for r in roots
    )
    sections.append(
        f"trace: {len(real)} spans, {len(annotations)} annotations; "
        f"root: {root_line or '(none)'}"
    )

    operator_rows = _operator_rows(spans)
    if operator_rows:
        sections.append(
            format_table(
                operator_rows,
                columns=["operator", "runs", "wall_s", "cost", "answers", "accuracy"],
                title="per-operator breakdown",
                float_format="{:.4f}",
            )
        )

    batch_summary, hotspots = _batch_rows(spans)
    if batch_summary:
        sections.append(
            format_table(batch_summary, title="batch runtime", float_format="{:.2f}")
        )
    if hotspots:
        rows = [
            {
                "batch": h["tags"].get("index", "?"),
                "retried": h["tags"].get("retried", 0),
                "timed_out": h["tags"].get("timed_out", 0),
                "abandoned": h["tags"].get("abandoned", 0),
            }
            for h in hotspots
        ]
        sections.append(format_table(rows, title="retry hotspots"))

    em_rows = _em_rows(spans)
    if em_rows:
        sections.append(
            format_table(
                em_rows,
                columns=["method", "runs", "iterations", "mean_final_delta"],
                title="truth inference (EM)",
                float_format="{:.2e}",
            )
        )

    slowest = sorted(real, key=lambda s: s.get("duration", 0.0), reverse=True)[:5]
    rows = [
        {
            "span": s.get("name"),
            "wall_s": s.get("duration", 0.0),
            "sim_s": (
                (s["sim_end"] - s["sim_start"])
                if s.get("sim_end") is not None and s.get("sim_start") is not None
                else ""
            ),
        }
        for s in slowest
    ]
    sections.append(format_table(rows, title="slowest spans", float_format="{:.4f}"))
    return "\n\n".join(sections)


def report_from_file(path: str) -> str:
    """Load *path* and render its report (the trace-report CLI body)."""
    return render_report(load_spans(path))
