"""Live ops endpoint: serve ``/metrics``, ``/healthz``, and ``/run``.

:class:`MetricsServer` wraps a stdlib :class:`http.server.ThreadingHTTPServer`
on a daemon thread so a long-running engine, demo, or chaos run can be
scraped mid-flight:

* ``/metrics`` — the registry in Prometheus text exposition format
  (:func:`repro.obs.prom.render_prometheus`), served with the
  ``text/plain; version=0.0.4`` content type a scraper expects.
* ``/healthz`` — liveness probe (``ok``).
* ``/run`` — JSON run status from the ``run_status`` provider: current
  statement, budget spent/remaining, breaker states, cache hit ratio,
  open batches — whatever the owner wires in.

Reads are cheap snapshots of in-memory state; the GIL makes the scalar
reads the renderer performs safe against the single-threaded run loop
mutating counters concurrently (a scrape may observe a half-advanced
*set* of counters, never a torn individual value).
"""

from __future__ import annotations

import json
import socket
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import CONTENT_TYPE, render_prometheus

RunStatusProvider = Callable[[], "dict[str, Any]"]


class _ThreadingHTTPServerV6(ThreadingHTTPServer):
    address_family = socket.AF_INET6


def _make_handler(server: "MetricsServer") -> type[BaseHTTPRequestHandler]:
    """Request handler class bound to one :class:`MetricsServer`.

    A factory (rather than a closure inside :meth:`MetricsServer.start`)
    so the error paths are unit-testable without a live socket.
    """

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt: str, *args: Any) -> None:  # noqa: ARG002
            pass  # ops endpoint: no per-request stderr chatter

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
            path = self.path.split("?", 1)[0]
            self._headers_sent = False
            try:
                if path == "/metrics":
                    body = render_prometheus(server.registry).encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", b"ok\n")
                elif path == "/run":
                    status = (
                        server.run_status() if server.run_status is not None else {}
                    )
                    body = json.dumps(status, default=str).encode("utf-8")
                    self._reply(200, "application/json; charset=utf-8", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")
            except Exception as exc:  # never kill the serving thread
                # Two hazards in this fallback: (a) the failure may *be* a
                # dead socket (scraper disconnected mid-response), so the
                # recovery write can raise again and the stdlib dumps a
                # traceback; (b) if the status line already went out, a
                # second send_response would emit malformed HTTP. Only
                # reply when no headers were sent, and swallow socket
                # errors — there is nobody left to talk to.
                if self._headers_sent:
                    self.close_connection = True
                    return
                try:
                    self._reply(
                        500,
                        "text/plain; charset=utf-8",
                        f"error: {exc}\n".encode(),
                    )
                except OSError:
                    self.close_connection = True

        def _reply(self, code: int, content_type: str, body: bytes) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            # Headers are buffered until end_headers() flushes them; once
            # that flush is attempted the status line is (possibly
            # partially) on the wire and must never be re-sent.
            self._headers_sent = True
            self.end_headers()
            self.wfile.write(body)

    return Handler


class MetricsServer:
    """Background HTTP server exposing one registry and one status provider.

    Args:
        registry: The metrics registry ``/metrics`` renders.
        run_status: Zero-arg callable returning the ``/run`` JSON payload;
            omitted → ``/run`` serves ``{}``.
        host: Bind address (loopback by default — this is an ops endpoint,
            not a public service).
        port: TCP port; 0 picks an ephemeral free port (read it back from
            :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        run_status: "RunStatusProvider | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not 0 <= port <= 65535:
            raise ConfigurationError(f"metrics port must be in [0, 65535], got {port}")
        self.registry = registry
        self.run_status = run_status
        self.host = host
        self._requested_port = port
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------ #

    def start(self) -> "MetricsServer":
        """Bind and begin serving on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        server_cls = ThreadingHTTPServer
        if ":" in self.host:  # IPv6 literal; the stdlib default is AF_INET
            server_cls = _ThreadingHTTPServerV6
        try:
            self._httpd = server_cls(
                (self.host, self._requested_port), _make_handler(self)
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind metrics server to {self.host}:{self._requested_port}: {exc}"
            ) from exc
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves 0 → the ephemeral port actually chosen)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server (IPv6 hosts are bracketed)."""
        host = f"[{self.host}]" if ":" in self.host else self.host
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Shut down the server and join the serving thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()
