"""Shared instrumentation helpers for crowd operators.

Every operator wraps its run in :class:`operator_span`, which opens an
``operator.<name>`` span on the platform's tracer and, on exit, stamps
the span with the cost and answer deltas the operator incurred and folds
the same deltas into ``operator.<name>.cost`` / ``.answers`` counters and
an ``operator.<name>.wall`` histogram on the platform's registry. With
both tracer and metrics disabled the context manager degenerates to two
attribute checks — the null path the overhead benchmark guards.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.tracer import NULL_SPAN, Span


class operator_span:
    """Context manager instrumenting one operator execution.

    Args:
        platform: Supplies ``tracer``, ``metrics``, and ``stats``.
        operator: Short operator name (``filter``, ``join``, ...).
        **tags: Extra tags stamped onto the span at open time.
    """

    __slots__ = (
        "platform",
        "operator",
        "tags",
        "span",
        "_active",
        "_cost0",
        "_answers0",
        "_wall0",
    )

    def __init__(self, platform: Any, operator: str, **tags: Any) -> None:
        self.platform = platform
        self.operator = operator
        self.tags = tags
        self.span: Span = NULL_SPAN  # type: ignore[assignment]
        self._active = False

    def __enter__(self) -> Span:
        self._active = self.platform.tracer.enabled or self.platform.metrics.enabled
        if not self._active:
            return NULL_SPAN  # type: ignore[return-value]
        stats = self.platform.stats
        self._cost0 = stats.cost_spent
        self._answers0 = stats.answers_collected
        self._wall0 = time.perf_counter()
        self.span = self.platform.tracer.span(f"operator.{self.operator}", **self.tags)
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if not self._active:
            return
        stats = self.platform.stats
        cost = stats.cost_spent - self._cost0
        answers = stats.answers_collected - self._answers0
        self.span.set_tag("cost", cost)
        self.span.set_tag("answers", answers)
        self.span.__exit__(exc_type, exc, tb)
        metrics = self.platform.metrics
        wall = time.perf_counter() - self._wall0
        # Dotted per-operator names are the documented aliases existing
        # reports and tests key on; the labeled operator.* families are what
        # the Prometheus exposition and the query profiler aggregate.
        metrics.inc(f"operator.{self.operator}.runs")
        metrics.inc(f"operator.{self.operator}.cost", cost)
        metrics.inc(f"operator.{self.operator}.answers", answers)
        metrics.observe(f"operator.{self.operator}.wall", wall)
        labels = {"operator": self.operator}
        metrics.inc("operator.runs", labels=labels)
        metrics.inc("operator.cost", cost, labels=labels)
        metrics.inc("operator.answers", answers, labels=labels)
        items = self.tags.get("items")
        if items is not None:
            metrics.inc("operator.items", items, labels=labels)
        metrics.observe("operator.wall", wall, labels=labels)
