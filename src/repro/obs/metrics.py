"""Metrics primitives: counters, gauges, and percentile histograms.

:class:`MetricsRegistry` is the single home for every quantitative signal
in a run. The platform's :class:`~repro.platform.platform.PlatformStats`
counters are *backed by* a registry (one source of truth), while richer
telemetry — assignment-latency histograms, retries per task, EM
convergence deltas, per-operator cost — is recorded through the guarded
convenience methods (:meth:`MetricsRegistry.inc`,
:meth:`MetricsRegistry.observe`), which are no-ops when the registry is
disabled so the hot path stays within noise of an uninstrumented run.
"""

from __future__ import annotations

import math
from typing import Any


class Counter:
    """A monotonically written scalar (ints stay ints, floats stay floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        self.value = float(value)


class Histogram:
    """Stores raw observations; percentiles by linear interpolation.

    Matches ``numpy.percentile``'s default (linear) method so results are
    directly comparable with the benchmark analysis code.
    """

    __slots__ = ("name", "values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100), linearly interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.values)
        ranked = self._sorted
        position = (len(ranked) - 1) * q / 100.0
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return ranked[low]
        weight = position - low
        return ranked[low] * (1.0 - weight) + ranked[high] * weight

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges, and histograms.

    Args:
        enabled: Gates the convenience recorders (:meth:`inc`,
            :meth:`observe`, :meth:`set_gauge`). Direct handles from
            :meth:`counter` / :meth:`gauge` / :meth:`histogram` always
            work — that is how :class:`PlatformStats` keeps its totals here
            even when extra telemetry is off.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -------------------------------------------------------------- #
    # Instrument handles (always live)
    # -------------------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        """The counter registered under *name*, created on first use."""
        found = self.counters.get(name)
        if found is None:
            found = self.counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name*, created on first use."""
        found = self.gauges.get(name)
        if found is None:
            found = self.gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under *name*, created on first use."""
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram(name)
        return found

    # -------------------------------------------------------------- #
    # Guarded recorders (no-ops when disabled)
    # -------------------------------------------------------------- #

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter *name* when the registry is enabled."""
        if self.enabled:
            self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram sample when the registry is enabled."""
        if self.enabled:
            self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* when the registry is enabled."""
        if self.enabled:
            self.gauge(name).set(value)

    # -------------------------------------------------------------- #
    # Export
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict[str, Any]:
        """All current values as plain data (counters, gauges, histograms)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "mean": h.mean,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                }
                for n, h in sorted(self.histograms.items())
            },
        }

    def report(self) -> str:
        """Human-readable run report: counters then histogram percentiles."""
        lines = ["== metrics =="]
        for name, counter in sorted(self.counters.items()):
            value = counter.value
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name} = {rendered}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"  {name} = {gauge.value:.4f}")
        if self.histograms:
            lines.append("  -- histograms (count / mean / p50 / p95 / p99) --")
            for name, hist in sorted(self.histograms.items()):
                lines.append(
                    f"  {name}: {hist.count} / {hist.mean:.4f} / "
                    f"{hist.p50:.4f} / {hist.p95:.4f} / {hist.p99:.4f}"
                )
        return "\n".join(lines)
