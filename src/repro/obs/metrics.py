"""Metrics primitives: counters, gauges, and percentile histograms.

:class:`MetricsRegistry` is the single home for every quantitative signal
in a run. The platform's :class:`~repro.platform.platform.PlatformStats`
counters are *backed by* a registry (one source of truth), while richer
telemetry — assignment-latency histograms, retries per task, EM
convergence deltas, per-operator cost — is recorded through the guarded
convenience methods (:meth:`MetricsRegistry.inc`,
:meth:`MetricsRegistry.observe`), which are no-ops when the registry is
disabled so the hot path stays within noise of an uninstrumented run.

Series may carry **labels** (Prometheus-style dimensions): the same family
name with different label sets yields independent series, e.g.
``registry.inc("operator.runs", labels={"operator": "filter"})``. Unlabeled
calls are untouched — they remain the single-series fast path every
existing call site uses. Histograms additionally carry fixed bucket
boundaries (:data:`DEFAULT_BUCKETS` unless overridden at first creation),
from which :meth:`Histogram.bucket_counts` derives the cumulative
per-bucket counts the Prometheus exposition format
(:mod:`repro.obs.prom`) serves as ``_bucket`` series.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from collections.abc import Mapping
from typing import Any

#: Default histogram bucket upper bounds (seconds-flavoured, covering both
#: sub-second wall timings and multi-minute simulated makespans). Chosen
#: once and kept fixed so scrapes of a live run are comparable over time.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

LabelItems = tuple[tuple[str, str], ...]


def normalize_labels(labels: "Mapping[str, Any] | None") -> LabelItems:
    """Canonical sorted ``((key, value), ...)`` label tuple (values as str)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: LabelItems = ()) -> str:
    """Registry key for one series: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically written scalar (ints stay ints, floats stay floats)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        self.value = float(value)


class Histogram:
    """Stores raw observations; percentiles by linear interpolation.

    Matches ``numpy.percentile``'s default (linear) method so results are
    directly comparable with the benchmark analysis code. Bucket boundaries
    are fixed at creation (:data:`DEFAULT_BUCKETS` unless overridden);
    cumulative bucket counts are derived lazily from the raw samples, so
    the per-observation hot path stays a single ``list.append``.
    """

    __slots__ = ("name", "labels", "buckets", "values", "_sorted")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: "tuple[float, ...] | None" = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        self.values: list[float] = []
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def _ranked(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self.values)
        return self._sorted

    def bucket_counts(self, bounds: "tuple[float, ...] | None" = None) -> list[int]:
        """Cumulative sample counts per upper bound (``value <= bound``).

        The implicit ``+Inf`` bucket is :attr:`count` and is not included.
        """
        ranked = self._ranked()
        return [bisect_right(ranked, bound) for bound in (bounds or self.buckets)]

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100), linearly interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        ranked = self._ranked()
        position = (len(ranked) - 1) * q / 100.0
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return ranked[low]
        weight = position - low
        return ranked[low] * (1.0 - weight) + ranked[high] * weight

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges, and histograms.

    Args:
        enabled: Gates the convenience recorders (:meth:`inc`,
            :meth:`observe`, :meth:`set_gauge`). Direct handles from
            :meth:`counter` / :meth:`gauge` / :meth:`histogram` always
            work — that is how :class:`PlatformStats` keeps its totals here
            even when extra telemetry is off.

    Series are stored keyed by :func:`series_key`: the bare family name for
    unlabeled series (the historical behaviour, so every existing lookup
    like ``registry.counters["platform.cost_spent"]`` still works), and
    ``name{k="v"}`` for labeled ones.

    Thread safety: series *creation* (the first use of a new name/label
    combination) and :meth:`series_snapshot` share a lock, so a scraper
    iterating the registry while another thread mints new labeled series
    can never hit ``RuntimeError: dictionary changed size during
    iteration``. Reads and writes of existing series stay lock-free — a
    scrape may observe a half-advanced *set* of values, never a torn
    individual value or a torn dict.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Instrument handles (always live)
    # -------------------------------------------------------------- #

    def counter(self, name: str, labels: "Mapping[str, Any] | None" = None) -> Counter:
        """The counter registered under *name* (+ *labels*), created on first use."""
        if labels is None:
            key, items = name, ()
        else:
            items = normalize_labels(labels)
            key = series_key(name, items)
        found = self.counters.get(key)
        if found is None:
            with self._lock:
                found = self.counters.get(key)
                if found is None:
                    found = self.counters[key] = Counter(name, items)
        return found

    def gauge(self, name: str, labels: "Mapping[str, Any] | None" = None) -> Gauge:
        """The gauge registered under *name* (+ *labels*), created on first use."""
        if labels is None:
            key, items = name, ()
        else:
            items = normalize_labels(labels)
            key = series_key(name, items)
        found = self.gauges.get(key)
        if found is None:
            with self._lock:
                found = self.gauges.get(key)
                if found is None:
                    found = self.gauges[key] = Gauge(name, items)
        return found

    def histogram(
        self,
        name: str,
        labels: "Mapping[str, Any] | None" = None,
        buckets: "tuple[float, ...] | None" = None,
    ) -> Histogram:
        """The histogram registered under *name* (+ *labels*), created on first use.

        *buckets* fixes the boundary set at creation; it is ignored for an
        already-registered series (boundaries are immutable once chosen).
        """
        if labels is None:
            key, items = name, ()
        else:
            items = normalize_labels(labels)
            key = series_key(name, items)
        found = self.histograms.get(key)
        if found is None:
            with self._lock:
                found = self.histograms.get(key)
                if found is None:
                    found = self.histograms[key] = Histogram(
                        name, items, buckets=buckets
                    )
        return found

    # -------------------------------------------------------------- #
    # Guarded recorders (no-ops when disabled)
    # -------------------------------------------------------------- #

    def inc(
        self,
        name: str,
        amount: float = 1,
        labels: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Increment counter *name* when the registry is enabled."""
        if self.enabled:
            self.counter(name, labels).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        labels: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Record a histogram sample when the registry is enabled."""
        if self.enabled:
            self.histogram(name, labels).observe(value)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Set gauge *name* when the registry is enabled."""
        if self.enabled:
            self.gauge(name, labels).set(value)

    # -------------------------------------------------------------- #
    # Export
    # -------------------------------------------------------------- #

    def series_snapshot(
        self,
    ) -> "tuple[dict[str, Counter], dict[str, Gauge], dict[str, Histogram]]":
        """Point-in-time shallow copies of the three series dicts.

        Taken under the creation lock, so every exporter iterating the
        result is immune to concurrent first-use series creation (the
        ``dictionary changed size during iteration`` race). The series
        objects themselves are shared, not copied — values keep advancing
        after the snapshot, which is fine for a scrape.
        """
        with self._lock:
            return dict(self.counters), dict(self.gauges), dict(self.histograms)

    def snapshot(self) -> dict[str, Any]:
        """All current values as plain data (counters, gauges, histograms).

        Keys are series keys (labeled series render as ``name{k="v"}``).
        Histogram entries carry cumulative ``buckets`` counts keyed by the
        upper bound, plus ``sum`` — the pieces the Prometheus exposition
        is assembled from.
        """
        counters, gauges, histograms = self.series_snapshot()
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "mean": h.mean,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                    "buckets": dict(
                        zip(map(str, h.buckets), h.bucket_counts(), strict=True)
                    ),
                }
                for n, h in sorted(histograms.items())
            },
        }

    def report(self) -> str:
        """Human-readable run report: counters then histogram percentiles."""
        counters, gauges, histograms = self.series_snapshot()
        lines = ["== metrics =="]
        for name, counter in sorted(counters.items()):
            value = counter.value
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name} = {rendered}")
        for name, gauge in sorted(gauges.items()):
            lines.append(f"  {name} = {gauge.value:.4f}")
        if histograms:
            lines.append("  -- histograms (count / mean / p50 / p95 / p99) --")
            for name, hist in sorted(histograms.items()):
                lines.append(
                    f"  {name}: {hist.count} / {hist.mean:.4f} / "
                    f"{hist.p50:.4f} / {hist.p95:.4f} / {hist.p99:.4f}"
                )
        return "\n".join(lines)
