"""Process-wide active tracer/metrics for code without a platform handle.

Operators and the batch runtime reach observability through their
platform (``platform.tracer`` / ``platform.metrics``). Truth-inference
algorithms deliberately have no platform dependency — they consume answer
mappings — so their EM loops look up the *active* pair here instead. The
engine and CLI :func:`activate` their instruments when observability is
on and :func:`deactivate` on close; the defaults are the no-op tracer and
a disabled registry, so library code can call :func:`current_tracer` and
:func:`current_metrics` unconditionally.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

_DISABLED_METRICS = MetricsRegistry(enabled=False)
_tracer: Tracer = NULL_TRACER
_metrics: MetricsRegistry = _DISABLED_METRICS


def current_tracer() -> Tracer:
    """The active tracer (the no-op tracer unless one was activated)."""
    return _tracer


def current_metrics() -> MetricsRegistry:
    """The active registry (a disabled one unless activated)."""
    return _metrics


def activate(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None) -> None:
    """Install *tracer*/*metrics* as the process-wide active instruments."""
    global _tracer, _metrics
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics


def deactivate(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None) -> None:
    """Restore the no-op defaults.

    When *tracer*/*metrics* are given, only deactivate if they are still
    the active ones — a later activation wins over an earlier close.
    """
    global _tracer, _metrics
    if tracer is None or tracer is _tracer:
        _tracer = NULL_TRACER
    if metrics is None or metrics is _metrics:
        _metrics = _DISABLED_METRICS
