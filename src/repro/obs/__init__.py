"""repro.obs: end-to-end tracing and metrics for the crowd pipeline.

The tutorial's pillars — quality, cost, latency — are all *measured*
quantities, so the pipeline carries a first-class observability layer:

* :class:`~repro.obs.tracer.Tracer` — hierarchical spans (engine →
  operator → batch → retry/EM-iteration) with wall-clock and
  simulated-clock timestamps, exported as JSONL.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  percentile histograms; also the backing store for
  :class:`~repro.platform.platform.PlatformStats`.
* Sinks (:mod:`repro.obs.sinks`) and the trace-report renderer
  (:mod:`repro.obs.report`).
* Prometheus text exposition (:mod:`repro.obs.prom`), a stdlib live-ops
  HTTP server (:mod:`repro.obs.server`), and a per-statement query
  profiler (:mod:`repro.obs.profiler`).

Everything defaults to off: :data:`~repro.obs.tracer.NULL_TRACER` and a
disabled registry keep the instrumented hot path within noise of an
uninstrumented build (guarded by ``bench_batch_runtime --quick``).
"""

from repro.obs.instrument import operator_span
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    normalize_labels,
    series_key,
)
from repro.obs.profiler import (
    QueryProfiler,
    load_profile,
    profile_report,
    render_profile,
)
from repro.obs.prom import (
    CONTENT_TYPE,
    DESCRIPTORS,
    ExpositionError,
    MetricDescriptor,
    parse_exposition,
    prom_name_for,
    render_prometheus,
    validate_exposition,
)
from repro.obs.report import build_tree, load_spans, render_report, report_from_file
from repro.obs.runtime import activate, current_metrics, current_tracer, deactivate
from repro.obs.server import MetricsServer
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, TraceSink
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "DESCRIPTORS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricDescriptor",
    "MetricsRegistry",
    "MetricsServer",
    "NullSink",
    "NullTracer",
    "QueryProfiler",
    "Span",
    "TraceSink",
    "Tracer",
    "activate",
    "build_tree",
    "current_metrics",
    "current_tracer",
    "deactivate",
    "load_profile",
    "load_spans",
    "normalize_labels",
    "operator_span",
    "parse_exposition",
    "profile_report",
    "prom_name_for",
    "render_profile",
    "render_prometheus",
    "render_report",
    "report_from_file",
    "series_key",
    "validate_exposition",
]
