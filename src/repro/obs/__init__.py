"""repro.obs: end-to-end tracing and metrics for the crowd pipeline.

The tutorial's pillars — quality, cost, latency — are all *measured*
quantities, so the pipeline carries a first-class observability layer:

* :class:`~repro.obs.tracer.Tracer` — hierarchical spans (engine →
  operator → batch → retry/EM-iteration) with wall-clock and
  simulated-clock timestamps, exported as JSONL.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  percentile histograms; also the backing store for
  :class:`~repro.platform.platform.PlatformStats`.
* Sinks (:mod:`repro.obs.sinks`) and the trace-report renderer
  (:mod:`repro.obs.report`).

Everything defaults to off: :data:`~repro.obs.tracer.NULL_TRACER` and a
disabled registry keep the instrumented hot path within noise of an
uninstrumented build (guarded by ``bench_batch_runtime --quick``).
"""

from repro.obs.instrument import operator_span
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import build_tree, load_spans, render_report, report_from_file
from repro.obs.runtime import activate, current_metrics, current_tracer, deactivate
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, TraceSink
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "NullTracer",
    "Span",
    "TraceSink",
    "Tracer",
    "activate",
    "build_tree",
    "current_metrics",
    "current_tracer",
    "deactivate",
    "load_spans",
    "operator_span",
    "render_report",
    "report_from_file",
]
