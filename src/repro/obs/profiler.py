"""Per-statement query profiler: where did each CrowdSQL statement spend.

Bodo-style query-profile collection for the crowd pipeline: the profiler
brackets every statement a :class:`~repro.lang.interpreter.CrowdSQLSession`
executes, captures registry deltas (labeled operator families, platform
spend, cache reuse, EM iterations) plus wall and simulated clock deltas,
and emits one ``profile.json`` alongside the trace. ``python -m repro
profile-report profile.json`` renders the per-statement, per-operator
table (time, rows, HITs, $, cache hits).

The profiler is metrics-driven, not span-driven: it diffs counter and
histogram state around each statement, so it works with tracing off and
adds no per-answer hot-path work — its cost is two registry snapshots per
*statement*.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.platform.platform import SimulatedPlatform

PROFILE_FORMAT_VERSION = 1

#: Labeled families the per-operator breakdown is assembled from
#: (see the descriptor table in :mod:`repro.obs.prom`).
_OPERATOR_COUNTERS = ("operator.runs", "operator.cost", "operator.answers", "operator.items")
_STATEMENT_COUNTERS = {
    "cost": "platform.cost_spent",
    "answers": "platform.answers_collected",
    "hits_published": "platform.tasks_published",
    "answers_reused": "cache.answers_reused",
    "cache_hits": "cache.hits",
    "cache_misses": "cache.misses",
    "hedges": "batch.hedges_launched",
    "hedges_won": "batch.hedges_won",
    "cancelled": "batch.tasks_cancelled",
    "cancel_refunded": "batch.cancel_cost_refunded",
}


def _counter_values(registry: MetricsRegistry) -> dict[str, float]:
    return {key: c.value for key, c in registry.counters.items()}


def _histogram_state(registry: MetricsRegistry) -> dict[str, tuple[int, float]]:
    return {key: (h.count, h.total) for key, h in registry.histograms.items()}


class _StatementCapture:
    """Context manager recording one statement's deltas into the profiler."""

    def __init__(self, profiler: "QueryProfiler", index: int, label: str) -> None:
        self.profiler = profiler
        self.index = index
        self.label = label
        self.rows_out: "int | None" = None

    def finish(self, result: Any) -> None:
        """Note the statement's result (row count extraction is duck-typed)."""
        rows = getattr(result, "rows", None)
        if rows is not None:
            self.rows_out = len(rows)
        else:
            self.rows_out = int(getattr(result, "row_count", 0))

    def __enter__(self) -> "_StatementCapture":
        import time

        registry = self.profiler.registry
        self._counters0 = _counter_values(registry)
        self._hists0 = _histogram_state(registry)
        self._wall0 = time.perf_counter()
        self._sim0 = self.profiler._sim_clock()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        import time

        registry = self.profiler.registry
        wall = time.perf_counter() - self._wall0
        sim = self.profiler._sim_clock() - self._sim0
        counters = _counter_values(registry)
        hists = _histogram_state(registry)
        deltas = {
            key: counters[key] - self._counters0.get(key, 0)
            for key in counters
            if counters[key] != self._counters0.get(key, 0)
        }
        hist_deltas = {
            key: (
                count - self._hists0.get(key, (0, 0.0))[0],
                total - self._hists0.get(key, (0, 0.0))[1],
            )
            for key, (count, total) in hists.items()
            if count != self._hists0.get(key, (0, 0.0))[0]
        }
        self.profiler._record(self, wall, sim, deltas, hist_deltas, failed=exc is not None)


class QueryProfiler:
    """Aggregate per-statement, per-operator run profiles from registry deltas.

    Args:
        registry: The (enabled) metrics registry statements are measured
            through.
        platform: Supplies the simulated clock (scheduler) when available.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        platform: "SimulatedPlatform | None" = None,
    ) -> None:
        self.registry = registry
        self.platform = platform
        self.statements: list[dict[str, Any]] = []

    def _sim_clock(self) -> float:
        if self.platform is not None and self.platform.scheduler is not None:
            return self.platform.scheduler.simulated_clock
        return 0.0

    def statement(self, index: int, label: str) -> _StatementCapture:
        """Bracket one statement execution; use as a context manager."""
        return _StatementCapture(self, index, label)

    # ------------------------------------------------------------------ #

    def _record(
        self,
        capture: _StatementCapture,
        wall: float,
        sim: float,
        deltas: dict[str, float],
        hist_deltas: dict[str, tuple[int, float]],
        failed: bool,
    ) -> None:
        from repro.obs.metrics import series_key

        operators: dict[str, dict[str, Any]] = {}

        def op_entry(operator: str) -> dict[str, Any]:
            return operators.setdefault(
                operator,
                {
                    "operator": operator,
                    "runs": 0,
                    "items": 0,
                    "wall_s": 0.0,
                    "cost": 0.0,
                    "answers": 0,
                },
            )

        # Labeled operator.* families carry the per-operator attribution.
        for family in _OPERATOR_COUNTERS:
            field = family.removeprefix("operator.")
            for key, value in deltas.items():
                series = self.registry.counters.get(key)
                if series is None or series.name != family:
                    continue
                labels = dict(series.labels)
                if "operator" not in labels:
                    continue
                op_entry(labels["operator"])[field] = op_entry(labels["operator"]).get(
                    field, 0
                ) + value
        for key, (_count, total) in hist_deltas.items():
            series = self.registry.histograms.get(key)
            if series is None or series.name != "operator.wall":
                continue
            labels = dict(series.labels)
            if "operator" in labels:
                op_entry(labels["operator"])["wall_s"] += total

        em_iterations = {
            dict(series.labels)["method"]: int(value)
            for key, value in deltas.items()
            if (series := self.registry.counters.get(key)) is not None
            and series.name == "em.iterations"
            and "method" in dict(series.labels)
        }

        record: dict[str, Any] = {
            "index": capture.index,
            "statement": capture.label,
            "wall_s": wall,
            "sim_s": sim,
            "rows_out": capture.rows_out,
            "failed": failed,
            "em_iterations": em_iterations,
            "operators": sorted(operators.values(), key=lambda e: e["operator"]),
        }
        for field, metric in _STATEMENT_COUNTERS.items():
            record[field] = deltas.get(series_key(metric), 0)
        self.statements.append(record)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def profile(self) -> dict[str, Any]:
        """The full profile document (the ``profile.json`` payload)."""
        totals = {
            "statements": len(self.statements),
            "wall_s": sum(s["wall_s"] for s in self.statements),
            "sim_s": sum(s["sim_s"] for s in self.statements),
            "cost": sum(s["cost"] for s in self.statements),
            "answers": sum(s["answers"] for s in self.statements),
            "hits_published": sum(s["hits_published"] for s in self.statements),
            "answers_reused": sum(s["answers_reused"] for s in self.statements),
            "hedges": sum(s["hedges"] for s in self.statements),
            "hedges_won": sum(s["hedges_won"] for s in self.statements),
            "cancelled": sum(s["cancelled"] for s in self.statements),
            "cancel_refunded": sum(s["cancel_refunded"] for s in self.statements),
            "em_iterations": sum(
                sum(s["em_iterations"].values()) for s in self.statements
            ),
        }
        return {
            "version": PROFILE_FORMAT_VERSION,
            "statements": self.statements,
            "totals": totals,
        }

    def save(self, path: str) -> None:
        """Write the profile document to *path* as JSON."""
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.profile(), handle, indent=2, default=str)
        except OSError as exc:
            raise ConfigurationError(f"cannot write profile {path!r}: {exc}") from exc


# ---------------------------------------------------------------------- #
# Report rendering (the profile-report CLI body)
# ---------------------------------------------------------------------- #


def load_profile(path: str) -> dict[str, Any]:
    """Read a ``profile.json`` written by :meth:`QueryProfiler.save`."""
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read profile {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not a JSON profile ({exc.msg})") from exc
    if not isinstance(document, dict) or "statements" not in document:
        raise ConfigurationError(f"{path}: not a profile document")
    return document


def render_profile(document: dict[str, Any]) -> str:
    """Human-readable per-statement, per-operator profile tables."""
    # Imported lazily: experiments pulls in the platform package, which in
    # turn imports repro.obs — a cycle at module-import time.
    from repro.experiments.report import format_table

    statements = document.get("statements", [])
    if not statements:
        return "(empty profile)"
    sections: list[str] = []
    rows = [
        {
            "#": s["index"],
            "statement": str(s["statement"])[:48],
            "wall_s": s["wall_s"],
            "sim_s": s["sim_s"],
            "rows": s["rows_out"] if s["rows_out"] is not None else "-",
            "hits": s["hits_published"],
            "reused": s["answers_reused"],
            # .get(): profiles written before hedging existed lack the field
            "hedges": s.get("hedges", 0),
            # .get(): profiles written before cancellation existed lack it
            "cancelled": s.get("cancelled", 0),
            "cost": s["cost"],
            "em_iters": sum(s.get("em_iterations", {}).values()),
        }
        for s in statements
    ]
    sections.append(
        format_table(rows, title="per-statement profile", float_format="{:.4f}")
    )
    for s in statements:
        if not s.get("operators"):
            continue
        op_rows = [
            {
                "operator": op["operator"],
                "runs": op["runs"],
                "items": op["items"],
                "wall_s": op["wall_s"],
                "cost": op["cost"],
                "answers": op["answers"],
            }
            for op in s["operators"]
        ]
        sections.append(
            format_table(
                op_rows,
                title=f"statement #{s['index']} ({str(s['statement'])[:48]}) operators",
                float_format="{:.4f}",
            )
        )
    totals = document.get("totals")
    if totals:
        line = (
            "totals: "
            f"{totals['statements']} statements, {totals['wall_s']:.3f}s wall, "
            f"{totals['sim_s']:.1f}s simulated, {totals['hits_published']} HITs published, "
            f"{totals['answers_reused']} answers reused, spend {totals['cost']:.4f}, "
            f"{totals['em_iterations']} EM iterations"
        )
        if totals.get("hedges"):
            line += f", {totals['hedges']} hedges ({totals.get('hedges_won', 0)} won)"
        if totals.get("cancelled"):
            line += (
                f", {int(totals['cancelled'])} HITs cancelled "
                f"(saved {totals.get('cancel_refunded', 0):.4f})"
            )
        sections.append(line)
    return "\n\n".join(sections)


def profile_report(path: str) -> str:
    """Load *path* and render its report (the profile-report CLI body)."""
    return render_profile(load_profile(path))
