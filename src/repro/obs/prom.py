"""Prometheus text exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
``text/plain; version=0.0.4`` exposition format — ``# HELP`` / ``# TYPE``
lines, escaped label values, and ``_bucket`` / ``_sum`` / ``_count``
series (with the mandatory ``+Inf`` bucket) for histograms.

The :data:`DESCRIPTORS` table is the **single naming authority**: it maps
every internal dotted metric name (``platform.tasks_published``) to its
exposition name under the one ``subsystem_name_unit`` scheme
(``platform_hits_published_total``), its type, and its help text. The
internal dotted names stay what :class:`~repro.platform.platform.
PlatformStats` views and existing tests key on — they are documented
aliases of the exposition names. Metrics without a descriptor (dynamic
families like ``faults.<kind>`` or the per-operator dotted aliases) are
auto-named by :func:`prom_name_for`, so the renderer is total over any
registry state.

:func:`parse_exposition` is the minimal conformance parser the format
tests and the CI smoke job round-trip scrapes through: it checks name and
label syntax, HELP/TYPE placement, histogram bucket monotonicity, and the
``+Inf``-equals-``_count`` invariant.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Content-Type a conforming scrape endpoint must serve.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass(frozen=True)
class MetricDescriptor:
    """Naming contract for one metric family.

    Attributes:
        name: Internal registry family name (dotted; the documented alias).
        prom_name: Exposition name — ``subsystem_name_unit`` (+ ``_total``
            for counters).
        kind: ``counter`` | ``gauge`` | ``histogram``.
        help: One-line HELP text.
        buckets: Histogram bucket override; None uses the series' own
            (:data:`~repro.obs.metrics.DEFAULT_BUCKETS` unless the call
            site fixed different boundaries at creation).
    """

    name: str
    prom_name: str
    kind: str
    help: str
    buckets: "tuple[float, ...] | None" = None


_RETRY_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)
_DELTA_BUCKETS = (1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

DESCRIPTORS: tuple[MetricDescriptor, ...] = (
    # platform
    MetricDescriptor(
        "platform.answers_collected", "platform_answers_collected_total", "counter",
        "Crowd answers committed to the platform answer log.",
    ),
    MetricDescriptor(
        "platform.tasks_published", "platform_hits_published_total", "counter",
        "Tasks (HITs) published to the simulated marketplace.",
    ),
    MetricDescriptor(
        "platform.cost_spent", "platform_cost_spent_dollars_total", "counter",
        "Budget spent on crowd answers, in task-reward currency.",
    ),
    # batch runtime
    MetricDescriptor(
        "batch.batches_dispatched", "batch_batches_dispatched_total", "counter",
        "Dispatch waves executed by the batch scheduler.",
    ),
    MetricDescriptor(
        "batch.assignments_dispatched", "batch_assignments_dispatched_total", "counter",
        "Assignment attempts sent to workers (including retries).",
    ),
    MetricDescriptor(
        "batch.assignments_retried", "batch_assignments_retried_total", "counter",
        "Assignment attempts that were retries after a fault.",
    ),
    MetricDescriptor(
        "batch.assignments_timed_out", "batch_assignments_timed_out_total", "counter",
        "Assignments reclaimed because they exceeded the timeout.",
    ),
    MetricDescriptor(
        "batch.assignments_abandoned", "batch_assignments_abandoned_total", "counter",
        "Assignments silently abandoned by workers.",
    ),
    MetricDescriptor(
        "batch.assignment_outcomes", "batch_assignment_outcomes_total", "counter",
        "Assignment attempts by outcome label (ok|timeout|abandoned).",
    ),
    MetricDescriptor(
        "batch.makespan", "batch_sim_makespan_seconds_total", "counter",
        "Simulated seconds of batch makespan, summed over batches.",
    ),
    MetricDescriptor(
        "batch.wall_clock", "batch_wall_seconds_total", "counter",
        "Real seconds spent dispatching batches.",
    ),
    MetricDescriptor(
        "batch.outage_wait", "batch_outage_wait_seconds_total", "counter",
        "Simulated seconds batches stalled waiting out platform outages.",
    ),
    MetricDescriptor(
        "batch.hedges", "batch_hedges_total", "counter",
        "Hedge copies by outcome label (won|lost|cancelled).",
    ),
    MetricDescriptor(
        "batch.hedges_launched", "batch_hedges_launched_total", "counter",
        "Speculative hedge copies launched against in-flight stragglers.",
    ),
    MetricDescriptor(
        "batch.hedges_won", "batch_hedges_won_total", "counter",
        "Hedge copies that answered before their straggling primary.",
    ),
    MetricDescriptor(
        "batch.hedges_lost", "batch_hedges_lost_total", "counter",
        "Hedge copies cancelled because the primary answered first.",
    ),
    MetricDescriptor(
        "batch.hedges_cancelled", "batch_hedges_cancelled_total", "counter",
        "Hedge copies that faulted in flight (distinct from abandonment).",
    ),
    MetricDescriptor(
        "batch.hedge_cost_refunded", "batch_hedge_cost_refunded_dollars_total", "counter",
        "Spend refunded by cancelling the losing copy of a hedge pair.",
    ),
    MetricDescriptor(
        "batch.cancellations", "batch_cancellations_total", "counter",
        "Pending HITs cancelled at a batch boundary, by reason label "
        "(early_termination).",
    ),
    MetricDescriptor(
        "batch.tasks_cancelled", "batch_tasks_cancelled_total", "counter",
        "Pending HITs dropped before publication by upstream cancellation.",
    ),
    MetricDescriptor(
        "batch.cancel_cost_refunded", "batch_cancel_cost_refunded_dollars_total", "counter",
        "Spend avoided by cancelling not-yet-published HITs.",
    ),
    MetricDescriptor(
        "operators.in_flight", "operators_in_flight", "gauge",
        "Crowd tasks currently in flight, by streaming operator label.",
    ),
    MetricDescriptor(
        "batch.assignment_latency", "batch_assignment_latency_seconds", "histogram",
        "Simulated service time of committed assignments.",
    ),
    MetricDescriptor(
        "batch.retries_per_task", "batch_retries_per_task", "histogram",
        "Retries each task needed within a batch (0 = first try landed).",
        buckets=_RETRY_BUCKETS,
    ),
    # answer cache
    MetricDescriptor(
        "cache.requests", "cache_requests_total", "counter",
        "Cache lookups by outcome label (hit|miss|inflight).",
    ),
    MetricDescriptor(
        "cache.hits", "cache_hits_total", "counter",
        "Tasks served entirely from the answer cache.",
    ),
    MetricDescriptor(
        "cache.misses", "cache_misses_total", "counter",
        "Tasks that had to be published to the crowd.",
    ),
    MetricDescriptor(
        "cache.coalesced", "cache_coalesced_total", "counter",
        "Duplicate in-flight tasks coalesced onto a canonical miss.",
    ),
    MetricDescriptor(
        "cache.evictions", "cache_evictions_total", "counter",
        "Entries evicted by the cache's LRU bound.",
    ),
    MetricDescriptor(
        "cache.answers_reused", "cache_answers_reused_total", "counter",
        "Individual answers replayed from the cache.",
    ),
    MetricDescriptor(
        "cache.cost_saved", "cache_cost_saved_dollars_total", "counter",
        "Spend avoided by answer reuse, at the pricing policy's rate.",
    ),
    # operators (labeled families; dotted operator.<name>.* remain aliases)
    MetricDescriptor(
        "operator.runs", "operator_runs_total", "counter",
        "Operator executions, labeled by operator.",
    ),
    MetricDescriptor(
        "operator.cost", "operator_cost_dollars_total", "counter",
        "Crowd spend attributed to each operator.",
    ),
    MetricDescriptor(
        "operator.answers", "operator_answers_total", "counter",
        "Crowd answers attributed to each operator.",
    ),
    MetricDescriptor(
        "operator.items", "operator_items_total", "counter",
        "Input items (rows in) processed by each operator.",
    ),
    MetricDescriptor(
        "operator.wall", "operator_wall_seconds", "histogram",
        "Wall-clock seconds per operator execution.",
    ),
    # truth inference
    MetricDescriptor(
        "em.iterations", "em_iterations_total", "counter",
        "EM iterations executed, labeled by inference method.",
    ),
    MetricDescriptor(
        "em.delta", "em_convergence_delta", "histogram",
        "Per-iteration EM convergence delta, labeled by method.",
        buckets=_DELTA_BUCKETS,
    ),
    # recovery & faults
    MetricDescriptor(
        "recovery.breaker_trips", "recovery_breaker_trips_total", "counter",
        "Circuit-breaker trips observed at batch boundaries.",
    ),
    MetricDescriptor(
        "recovery.tasks_failed", "recovery_tasks_failed_total", "counter",
        "Tasks recorded as failed under skip/degrade policies.",
    ),
    MetricDescriptor(
        "recovery.deadline_escalations", "recovery_deadline_escalations_total", "counter",
        "Stage advances of adaptive deadline breakers (hedge|shrink).",
    ),
    MetricDescriptor(
        "faults.outage_delays", "faults_outage_delays_total", "counter",
        "Batches stalled by an injected platform outage.",
    ),
    MetricDescriptor(
        "faults.outage_wait", "faults_outage_wait_seconds", "histogram",
        "Simulated seconds of injected outage stall per batch.",
    ),
    MetricDescriptor(
        "faults.stragglers", "faults_stragglers_total", "counter",
        "Assignments inflated by an injected straggler spike.",
    ),
    # latency rounds
    MetricDescriptor(
        "round.duration", "round_sim_duration_seconds", "histogram",
        "Simulated makespan of each retainer/round timeline.",
    ),
    # multi-tenant service
    MetricDescriptor(
        "service.tasks_dispatched", "service_tasks_dispatched_total", "counter",
        "Crowd tasks dispatched to the shared platform, labeled by tenant.",
    ),
    MetricDescriptor(
        "service.units_admitted", "service_units_admitted_total", "counter",
        "Work units admitted past admission control, labeled by tenant.",
    ),
    MetricDescriptor(
        "service.units_rejected", "service_units_rejected_total", "counter",
        "Work units rejected by admission control, labeled by tenant+reason.",
    ),
    MetricDescriptor(
        "service.queue_depth", "service_queue_depth", "gauge",
        "Work units waiting in each tenant's queue.",
    ),
    MetricDescriptor(
        "service.queue_wait", "service_queue_wait_units", "histogram",
        "Dispatcher turns a work unit waited in its tenant queue.",
        buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
    ),
)

DESCRIPTOR_INDEX: dict[str, MetricDescriptor] = {d.name: d for d in DESCRIPTORS}

_PROM_BY_NAME: dict[str, MetricDescriptor] = {d.prom_name: d for d in DESCRIPTORS}
if len(_PROM_BY_NAME) != len(DESCRIPTORS):  # pragma: no cover - table invariant
    raise RuntimeError("duplicate prom_name in metric descriptor table")


def sanitize_metric_name(name: str) -> str:
    """Fallback exposition name for a family without a descriptor."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def prom_name_for(name: str, kind: str) -> tuple[str, str, "tuple[float, ...] | None"]:
    """Resolve a family to ``(prom_name, help, bucket_override)``.

    Descriptor-listed families use the table; anything else is sanitized,
    with counters given the conventional ``_total`` suffix.
    """
    descriptor = DESCRIPTOR_INDEX.get(name)
    if descriptor is not None:
        return descriptor.prom_name, descriptor.help, descriptor.buckets
    prom = sanitize_metric_name(name)
    if kind == "counter" and not prom.endswith("_total"):
        prom += "_total"
    return prom, f"Auto-named from internal metric {name!r}.", None


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape HELP text per the exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (ints bare; NaN/±Inf spelled per the format)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _format_bound(bound: float) -> str:
    """``le`` label text for a bucket bound (trim integral floats)."""
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(float(bound))


def _labels_text(labels, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in items)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the ``text/plain; version=0.0.4`` exposition format.

    Output is a pure function of registry state: families sort by
    exposition name, series within a family by label tuple, so re-rendering
    a fixed registry is bit-identical — the stability the conformance
    tests pin.
    """
    families: dict[str, dict] = {}

    def family(name: str, kind: str) -> dict:
        prom, help_text, buckets = prom_name_for(name, kind)
        entry = families.setdefault(
            prom, {"kind": kind, "help": help_text, "buckets": buckets, "series": []}
        )
        return entry

    # Iterate copies taken under the registry's creation lock: the service
    # run loop mints new labeled series concurrently with scrapes, and
    # iterating the live dicts would race their first-use inserts.
    counters, gauges, histograms = registry.series_snapshot()
    for counter in counters.values():
        family(counter.name, "counter")["series"].append(counter)
    for gauge in gauges.values():
        family(gauge.name, "gauge")["series"].append(gauge)
    for hist in histograms.values():
        family(hist.name, "histogram")["series"].append(hist)

    lines: list[str] = []
    for prom in sorted(families):
        entry = families[prom]
        kind = entry["kind"]
        lines.append(f"# HELP {prom} {escape_help(entry['help'])}")
        lines.append(f"# TYPE {prom} {kind}")
        for series in sorted(entry["series"], key=lambda s: s.labels):
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{prom}{_labels_text(series.labels)} {format_value(series.value)}"
                )
                continue
            bounds = entry["buckets"] or series.buckets
            counts = series.bucket_counts(bounds)
            for bound, cumulative in zip(bounds, counts, strict=True):
                labels = _labels_text(series.labels, (("le", _format_bound(bound)),))
                lines.append(f"{prom}_bucket{labels} {cumulative}")
            inf_labels = _labels_text(series.labels, (("le", "+Inf"),))
            lines.append(f"{prom}_bucket{inf_labels} {series.count}")
            lines.append(
                f"{prom}_sum{_labels_text(series.labels)} {format_value(series.total)}"
            )
            lines.append(f"{prom}_count{_labels_text(series.labels)} {series.count}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# Minimal conformance parser (format tests + CI scrape validation)
# ---------------------------------------------------------------------- #


class ExpositionError(ValueError):
    """A scrape body violated the exposition format."""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_labels(text: "str | None") -> tuple[tuple[str, str], ...]:
    if not text:
        return ()
    pairs: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _LABEL_PAIR_RE.match(text, position)
        if match is None:
            raise ExpositionError(f"malformed label set: {{{text}}}")
        pairs.append((match.group("key"), _unescape_label_value(match.group("value"))))
        position = match.end()
    return tuple(pairs)


def _parse_value(text: str) -> float:
    if text == "NaN":
        return math.nan
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionError(f"unparseable sample value {text!r}") from exc


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse (and conformance-check) an exposition body.

    Returns ``{family_name: {"type", "help", "samples"}}`` where samples is
    a list of ``(metric_name, labels_tuple, value)``. Raises
    :class:`ExpositionError` on: invalid metric/label names, samples
    without a preceding ``# TYPE``, duplicate series within a family,
    non-monotone histogram buckets, a missing ``+Inf`` bucket, or an
    ``+Inf`` bucket disagreeing with ``_count``.
    """
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}

    def owner(sample_name: str) -> "str | None":
        if sample_name in typed:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if typed.get(base) == "histogram":
                    return base
        return None

    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ExpositionError(f"line {number}: malformed HELP line")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ExpositionError(f"line {number}: malformed TYPE line")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(f"line {number}: unknown metric type {kind!r}")
            if name in typed:
                raise ExpositionError(f"line {number}: duplicate TYPE for {name}")
            typed[name] = kind
            families.setdefault(name, {"type": None, "help": None, "samples": []})[
                "type"
            ] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"line {number}: unparseable sample: {line!r}")
        sample_name = match.group("name")
        base = owner(sample_name)
        if base is None:
            raise ExpositionError(
                f"line {number}: sample {sample_name!r} has no preceding # TYPE"
            )
        labels = _parse_labels(match.group("labels"))
        for key, _ in labels:
            if not _LABEL_RE.match(key):
                raise ExpositionError(f"line {number}: invalid label name {key!r}")
        value = _parse_value(match.group("value"))
        samples = families[base]["samples"]
        identity = (sample_name, labels)
        if any((n, tags) == identity for n, tags, _ in samples):
            raise ExpositionError(f"line {number}: duplicate series {identity}")
        samples.append((sample_name, labels, value))

    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        _check_histogram(name, entry["samples"])
    return families


def _check_histogram(name: str, samples: list) -> None:
    """Bucket monotonicity and +Inf/_count agreement for one family."""
    by_series: dict[tuple, dict] = {}
    for sample_name, labels, value in samples:
        base_labels = tuple(pair for pair in labels if pair[0] != "le")
        entry = by_series.setdefault(
            base_labels, {"buckets": [], "count": None}
        )
        if sample_name == f"{name}_bucket":
            le = dict(labels).get("le")
            if le is None:
                raise ExpositionError(f"{name}: bucket sample without le label")
            entry["buckets"].append((_parse_value(le), value))
        elif sample_name == f"{name}_count":
            entry["count"] = value
    for labels, entry in by_series.items():
        buckets = sorted(entry["buckets"], key=lambda pair: pair[0])
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ExpositionError(f"{name}{dict(labels)}: missing +Inf bucket")
        counts = [count for _, count in buckets]
        if any(a > b for a, b in zip(counts, counts[1:], strict=False)):
            raise ExpositionError(f"{name}{dict(labels)}: bucket counts not monotone")
        if entry["count"] is not None and buckets[-1][1] != entry["count"]:
            raise ExpositionError(
                f"{name}{dict(labels)}: +Inf bucket != _count "
                f"({buckets[-1][1]} vs {entry['count']})"
            )


def validate_exposition(text: str) -> int:
    """Conformance-check a scrape body; returns the number of samples."""
    families = parse_exposition(text)
    return sum(len(entry["samples"]) for entry in families.values())
