"""Span-based tracing for the crowd pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — engine run →
operators → batches → retries / EM iterations — each carrying wall-clock
timestamps, optional *simulated*-clock timestamps, and free-form tags.
Finished spans stream to a :class:`~repro.obs.sinks.TraceSink` as JSON
dicts (see :data:`SPAN_FIELDS` for the schema).

Two kinds of record exist:

* ``span`` — has duration; opened/closed around a unit of work.
* ``annotation`` — zero-duration point event attached to the current span
  (a retry, a discrete simulation event, one EM iteration).

Tracing off is the default: :data:`NULL_TRACER` satisfies the same
interface with constant no-ops, so instrumented code pays one method call
and an attribute check on the hot path. Spans must be opened and closed on
the thread that owns the tracer (the batch runtime plans and commits on
the caller's thread, so this holds throughout the library).
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.sinks import MemorySink, TraceSink

SPAN_FIELDS = (
    "span_id",
    "parent_id",
    "name",
    "kind",
    "start",
    "end",
    "duration",
    "sim_start",
    "sim_end",
    "tags",
)


class Span:
    """One traced unit of work (or a zero-duration annotation)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "kind",
        "tags",
        "start_wall",
        "end_wall",
        "sim_start",
        "sim_end",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        kind: str = "span",
        sim_start: float | None = None,
        tags: dict[str, Any] | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.tags = tags or {}
        self.start_wall = time.perf_counter()
        self.end_wall: float | None = None
        self.sim_start = sim_start
        self.sim_end: float | None = None

    def set_tag(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one tag on this span."""
        self.tags[key] = value

    @property
    def duration(self) -> float:
        """Wall-clock seconds; 0 while the span is still open."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    def to_dict(self) -> dict[str, Any]:
        """The JSONL record for this span (schema: :data:`SPAN_FIELDS`)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start_wall,
            "end": self.end_wall if self.end_wall is not None else self.start_wall,
            "duration": self.duration,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "tags": self.tags,
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._tracer.end_span(self)


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()
    tags: dict[str, Any] = {}
    sim_start = None
    sim_end = None
    duration = 0.0

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass

    def __setattr__(self, key: str, value: Any) -> None:
        pass  # instrumentation may stamp sim_end etc.; silently drop it


NULL_SPAN = _NullSpan()


class Tracer:
    """Hierarchical span recorder.

    Args:
        sink: Destination for finished spans (default: in-memory).

    Span ids are assigned from a per-tracer counter starting at 1, so two
    runs with identical control flow produce identical trees (timestamps
    aside) — the determinism the trace tests pin down.
    """

    enabled = True

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self._stack: list[Span] = []
        self._next_id = 1
        self._closed = False

    # -------------------------------------------------------------- #
    # Span lifecycle
    # -------------------------------------------------------------- #

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, sim_start: float | None = None, **tags: Any) -> Span:
        """Open a child span of the current span; use as a context manager."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=parent,
            sim_start=sim_start,
            tags=tags,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close *span* (and any forgotten children still open inside it)."""
        if span not in self._stack:
            return  # already closed (idempotent)
        while self._stack:
            top = self._stack.pop()
            top.end_wall = time.perf_counter()
            self.sink.emit(top.to_dict())
            if top is span:
                return

    def annotate(self, name: str, sim_time: float | None = None, **tags: Any) -> None:
        """Record a zero-duration point event under the current span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=parent,
            kind="annotation",
            sim_start=sim_time,
            tags=tags,
        )
        self._next_id += 1
        span.end_wall = span.start_wall
        span.sim_end = sim_time
        self.sink.emit(span.to_dict())

    def close(self) -> None:
        """End every open span (outermost last) and close the sink."""
        if self._closed:
            return
        while self._stack:
            self.end_span(self._stack[-1])
        self.sink.close()
        self._closed = True


class NullTracer(Tracer):
    """Tracing disabled: every operation is a constant no-op."""

    enabled = False

    def __init__(self) -> None:  # no sink, no stack
        pass

    @property
    def current(self) -> Span | None:
        return None

    def span(self, name: str, sim_start: float | None = None, **tags: Any) -> Span:
        return NULL_SPAN  # type: ignore[return-value]

    def end_span(self, span: Span) -> None:
        pass

    def annotate(self, name: str, sim_time: float | None = None, **tags: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
