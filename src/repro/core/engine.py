"""The CrowdEngine: one object wiring storage, platform, quality, and SQL.

This is the public entry point a downstream user adopts::

    from repro import CrowdEngine, EngineConfig

    engine = CrowdEngine(EngineConfig(redundancy=5, inference="ds", seed=42))
    engine.sql("CREATE TABLE photos (pid INTEGER, caption STRING CROWD, "
               "PRIMARY KEY (pid))")
    ...

Every crowd-powered operator is also available as a method, so programs can
mix declarative (SQL) and imperative (operator) styles against one shared
budget and worker pool — the architecture CrowdDB/Qurk/Deco share.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.config import EngineConfig
from repro.cost.pruning import SimilarityPruner
from repro.data.database import Database
from repro.data.table import Table
from repro.errors import ConfigurationError
from repro.lang.executor import CrowdOracle, QueryResult
from repro.lang.interpreter import CrowdSQLSession, StatementResult
from repro.obs import NULL_TRACER, JsonlSink, MetricsRegistry, Tracer
from repro.obs.profiler import QueryProfiler
from repro.obs.runtime import activate, deactivate
from repro.obs.server import MetricsServer
from repro.operators.categorize import CategorizeResult, CrowdCategorize
from repro.operators.collect import CollectResult, CrowdCollect
from repro.operators.count import CountResult, CrowdCount
from repro.operators.fill import CrowdFill, FillResult
from repro.operators.filter import AdaptiveFilter, FilterResult, FixedKFilter
from repro.operators.join import CrowdJoin, JoinResult
from repro.operators.sort import (
    CrowdComparator,
    SortResult,
    all_pairs_sort,
    hybrid_sort,
    merge_sort_crowd,
    rating_sort,
)
from repro.operators.topk import TopKResult, topk_tournament, tournament_max
from repro.platform.platform import PlatformStats, SimulatedPlatform
from repro.platform.pricing import PricingPolicy
from repro.workers.pool import WorkerPool

_SORT_STRATEGIES = ("all_pairs", "merge", "rating", "hybrid")


class CrowdEngine:
    """Facade over the whole crowddm stack.

    Args:
        config: Engine configuration (defaults are sensible for demos).
        pool: Worker pool; a heterogeneous pool per the config when omitted.
        database: Catalog to use; a fresh one when omitted.
        oracle: Simulation ground truth for SQL crowd operators.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        pool: WorkerPool | None = None,
        database: Database | None = None,
        oracle: CrowdOracle | None = None,
    ):
        self.config = config or EngineConfig()
        low, high = self.config.pool_accuracy_range
        self.pool = pool or WorkerPool.heterogeneous(
            self.config.pool_size, low, high, seed=self.config.seed
        )
        if self.config.trace_path is not None:
            self.tracer = Tracer(JsonlSink(self.config.trace_path))
        else:
            self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self.platform = SimulatedPlatform(
            self.pool,
            budget=self.config.budget,
            pricing=PricingPolicy(default=self.config.task_price),
            seed=self.config.seed + 1,
            batch=self.config.make_batch_config(),
            tracer=self.tracer,
            metrics=self.metrics,
            event_log_limit=self.config.event_log_limit,
        )
        cache = self.config.make_cache()
        if cache is not None:
            from pathlib import Path

            if self.config.cache_path and Path(self.config.cache_path).exists():
                cache.load(self.config.cache_path)
            self.platform.attach_cache(cache)
        plan = self.config.make_fault_plan()
        if plan is not None:
            self.platform.attach_faults(plan)
        if self.platform.scheduler is not None:
            from repro.recovery.breakers import (
                AdaptiveDeadlineBreaker,
                BudgetBreaker,
                DeadlineBreaker,
            )

            if self.config.budget_reserve > 0:
                self.platform.scheduler.breakers.append(
                    BudgetBreaker(reserve=self.config.budget_reserve)
                )
            if self.config.deadline is not None:
                breaker_cls = (
                    AdaptiveDeadlineBreaker
                    if self.config.adaptive_deadline
                    else DeadlineBreaker
                )
                self.platform.scheduler.breakers.append(
                    breaker_cls(deadline=self.config.deadline)
                )
        # `is None` check: an empty Database is falsy (it defines __len__).
        self.database = Database() if database is None else database
        self.oracle = oracle or CrowdOracle()
        self.profiler: QueryProfiler | None = None
        if self.config.profile_path is not None:
            self.profiler = QueryProfiler(self.metrics, platform=self.platform)
        self._session = CrowdSQLSession(
            database=self.database,
            platform=self.platform,
            redundancy=self.config.redundancy,
            inference=self.config.make_inference(),
            oracle=self.oracle,
            profiler=self.profiler,
            pipeline=self.config.pipeline,
        )
        self.metrics_server: MetricsServer | None = None
        if self.config.metrics_port is not None:
            self.metrics_server = MetricsServer(
                self.metrics,
                run_status=self.run_status,
                port=self.config.metrics_port,
            )
            self.metrics_server.start()
        self._closed = False
        # Truth inference has no platform handle; it reaches the tracer and
        # registry through the process-global obs runtime.
        if self.tracer.enabled or self.metrics.enabled:
            activate(self.tracer, self.metrics)
        self._root_span = self.tracer.span(
            "engine", seed=self.config.seed, inference=self.config.inference
        )

    # ------------------------------------------------------------------ #
    # Declarative interface
    # ------------------------------------------------------------------ #

    def sql(self, text: str) -> list[QueryResult | StatementResult]:
        """Run a CrowdSQL script."""
        return self._session.execute(text)

    def query(self, text: str) -> QueryResult:
        """Run a script ending in SELECT; return its rows."""
        return self._session.query(text)

    def explain(self, text: str) -> str:
        """Show the (optimized) plan and estimated crowd cost."""
        return self._session.explain(text)

    def table(self, name: str) -> Table:
        """Look up a table in the engine's catalog."""
        return self.database.table(name)

    # ------------------------------------------------------------------ #
    # Imperative operators
    # ------------------------------------------------------------------ #

    def _inference(self):
        return self.config.make_inference()

    def filter(
        self,
        items: Sequence[Any],
        question: str,
        truth_fn: Callable[[Any], bool],
        adaptive: bool = True,
        **kwargs: Any,
    ) -> FilterResult:
        """Crowd-filter *items* by a human-judged predicate."""
        if adaptive:
            op = AdaptiveFilter(self.platform, question, truth_fn=truth_fn, **kwargs)
        else:
            op = FixedKFilter(
                self.platform,
                question,
                truth_fn=truth_fn,
                redundancy=kwargs.pop("redundancy", self.config.redundancy),
                **kwargs,
            )
        return op.run(items)

    def join(
        self,
        records: Sequence[Any],
        truth_fn: Callable[[Any, Any], bool],
        prune_threshold: float | None = 0.3,
        use_transitivity: bool = True,
        **kwargs: Any,
    ) -> JoinResult:
        """Entity-resolve *records* (machine pruning + transitivity on)."""
        pruner = (
            SimilarityPruner(prune_threshold) if prune_threshold is not None else None
        )
        op = CrowdJoin(
            self.platform,
            truth_fn,
            pruner=pruner,
            use_transitivity=use_transitivity,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return op.run(records)

    def sort(
        self,
        items: Sequence[Any],
        score_fn: Callable[[Any], float],
        strategy: str = "merge",
        **kwargs: Any,
    ) -> SortResult:
        """Crowd-sort *items* best-first with the chosen strategy."""
        if strategy not in _SORT_STRATEGIES:
            raise ConfigurationError(
                f"unknown sort strategy {strategy!r}; available: {_SORT_STRATEGIES}"
            )
        redundancy = kwargs.pop("redundancy", self.config.redundancy)
        if strategy == "rating":
            return rating_sort(self.platform, items, score_fn, redundancy, **kwargs)
        if strategy == "hybrid":
            return hybrid_sort(self.platform, items, score_fn, redundancy, **kwargs)
        comparator = CrowdComparator(
            self.platform,
            items,
            score_fn,
            redundancy=redundancy,
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        if strategy == "all_pairs":
            return all_pairs_sort(comparator)
        return merge_sort_crowd(comparator)

    def max(
        self,
        items: Sequence[Any],
        score_fn: Callable[[Any], float],
        fan_in: int = 2,
        **kwargs: Any,
    ) -> TopKResult:
        """Find the best item by tournament."""
        comparator = CrowdComparator(
            self.platform,
            items,
            score_fn,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return tournament_max(comparator, fan_in=fan_in)

    def topk(
        self,
        items: Sequence[Any],
        score_fn: Callable[[Any], float],
        k: int,
        fan_in: int = 2,
        **kwargs: Any,
    ) -> TopKResult:
        """Find the best k items by repeated tournaments."""
        comparator = CrowdComparator(
            self.platform,
            items,
            score_fn,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return topk_tournament(comparator, k=k, fan_in=fan_in)

    def count(
        self,
        items: Sequence[Any],
        question: str,
        truth_fn: Callable[[Any], bool],
        sample_size: int,
        **kwargs: Any,
    ) -> CountResult:
        """Estimate how many items satisfy a predicate, by sampling."""
        op = CrowdCount(
            self.platform,
            question,
            truth_fn,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            seed=kwargs.pop("seed", self.config.seed),
            **kwargs,
        )
        return op.run(items, sample_size=sample_size)

    def collect(self, question: str, max_queries: int, **kwargs: Any) -> CollectResult:
        """Open-world enumeration (requires collector workers in the pool)."""
        op = CrowdCollect(self.platform, question, **kwargs)
        return op.run(max_queries=max_queries)

    def fill(
        self,
        table: Table | str,
        truth_fn: Callable[[dict[str, Any], str], Any],
        **kwargs: Any,
    ) -> FillResult:
        """Resolve a table's CNULL cells via the crowd."""
        target = self.database.table(table) if isinstance(table, str) else table
        op = CrowdFill(
            self.platform,
            truth_fn=truth_fn,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return op.run(target)

    def categorize(
        self,
        items: Sequence[Any],
        categories: Sequence[Any],
        truth_fn: Callable[[Any], Any],
        **kwargs: Any,
    ) -> CategorizeResult:
        """Crowd GROUP BY into a fixed taxonomy."""
        op = CrowdCategorize(
            self.platform,
            categories,
            truth_fn=truth_fn,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return op.run(items)

    def skyline(
        self,
        items: Sequence[Any],
        dimension_scores: Sequence[Callable[[Any], float]],
        **kwargs: Any,
    ):
        """Crowd skyline over multiple subjective dimensions."""
        from repro.operators.skyline import CrowdSkyline

        op = CrowdSkyline(
            self.platform,
            items,
            dimension_scores,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return op.run()

    def match_schemas(
        self,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        truth: dict[str, str],
        **kwargs: Any,
    ):
        """Crowd schema matching between two attribute lists."""
        from repro.operators.schema_matching import CrowdSchemaMatcher

        matcher = CrowdSchemaMatcher(
            self.platform,
            truth,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return matcher.run(source_attributes, target_attributes)

    def plan(
        self,
        graph: dict[Any, Sequence[Any]],
        edge_score: Callable[[Any, Any], float],
        start: Any,
        steps: int,
        strategy: str = "beam",
        **kwargs: Any,
    ):
        """Crowd-guided planning (greedy or beam) over a successor graph."""
        from repro.operators.plan import CrowdPlanner

        if strategy not in ("greedy", "beam"):
            raise ConfigurationError("plan strategy must be 'greedy' or 'beam'")
        width = kwargs.pop("width", 3)
        planner = CrowdPlanner(
            self.platform,
            graph,
            edge_score,
            redundancy=kwargs.pop("redundancy", self.config.redundancy),
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        if strategy == "greedy":
            return planner.greedy(start, steps)
        return planner.beam(start, steps, width=width)

    def find_fix_verify(self, documents: Sequence[Any], **kwargs: Any):
        """Find-Fix-Verify text correction over FfvDocument objects."""
        from repro.operators.findfixverify import FindFixVerify

        workflow = FindFixVerify(
            self.platform,
            inference=kwargs.pop("inference", self._inference()),
            **kwargs,
        )
        return workflow.run(documents)

    # ------------------------------------------------------------------ #
    # Robustness: degraded gathering and checkpoint/resume
    # ------------------------------------------------------------------ #

    def gather(self, tasks: Sequence[Any], redundancy: int | None = None):
        """Collect answers for raw tasks under the configured failure policy.

        Returns a :class:`~repro.recovery.degrade.DegradedResult`: per-task
        answers, failure records, per-tuple confidences (via the engine's
        inference method), and a coverage report. Under the default
        ``failure_policy="fail"`` this raises on the first unrecoverable
        task, exactly like :meth:`SimulatedPlatform.collect_batch`.
        """
        from repro.recovery.degrade import DegradedResult

        redundancy = redundancy or self.config.redundancy
        run = self.platform.scheduler.run(list(tasks), redundancy=redundancy)
        inferred = None
        evidence = {t: a for t, a in run.answers.items() if a}
        if evidence:
            inferred = self._inference().infer(evidence)
        return DegradedResult.from_answers(
            tasks, run.answers, run.failures, redundancy, inference=inferred
        )

    def checkpoint(self, directory: str) -> None:
        """Snapshot platform/scheduler/EM state to *directory* (JSON)."""
        from repro.recovery.checkpoint import Checkpoint

        Checkpoint.capture(
            self.platform,
            scheduler=self.platform.scheduler,
            inference=self._session.inference,
        ).save(directory)

    def restore_checkpoint(self, directory: str) -> None:
        """Restore a snapshot written by :meth:`checkpoint` into this engine.

        The engine must be configured identically to the one that wrote the
        snapshot (same seed, pool size, batch knobs); the checkpoint then
        overwrites the mutable run state — RNG streams, pool membership,
        answer log, spend, scheduler clock — so dispatching continues
        bit-identically to a run that was never interrupted.
        """
        from repro.recovery.checkpoint import Checkpoint

        Checkpoint.load(directory).restore(
            self.platform,
            scheduler=self.platform.scheduler,
            inference=self._session.inference,
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def metrics_report(self) -> str:
        """Human-readable dump of the engine's metrics registry."""
        return self.metrics.report()

    def run_status(self) -> dict[str, Any]:
        """Live run snapshot: the ``/run`` endpoint's JSON payload.

        Safe to call from the server thread — every field is a scalar
        read of engine state (the GIL makes each read atomic).
        """
        import math

        stats = self.platform.stats
        budget = self.platform.budget
        remaining = self.platform.remaining_budget
        hits = stats.cache_hits
        misses = stats.cache_misses
        requests = hits + misses
        breakers = []
        scheduler = self.platform.scheduler
        if scheduler is not None:
            breakers = [
                {"name": b.name, "tripped": b.tripped}
                for b in scheduler.breakers
            ]
        return {
            "current_statement": self._session.current_statement,
            "budget": {
                "limit": None if math.isinf(budget) else budget,
                "spent": stats.cost_spent,
                "remaining": None if math.isinf(remaining) else remaining,
            },
            "answers_collected": stats.answers_collected,
            "hits_published": stats.tasks_published,
            "batches_dispatched": stats.batches_dispatched,
            "open_batches": stats.assignments_dispatched
            - stats.assignments_timed_out
            - stats.assignments_abandoned,
            "simulated_clock": (
                scheduler.simulated_clock if scheduler is not None else 0.0
            ),
            "cache": {
                "enabled": self.platform.cache is not None,
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / requests) if requests else 0.0,
                "answers_reused": stats.cache_answers_reused,
            },
            "hedges": {
                "enabled": (
                    scheduler is not None and scheduler.hedge_state is not None
                ),
                "launched": stats.hedges_launched,
                "won": stats.hedges_won,
                "lost": stats.hedges_lost,
                "cancelled": stats.hedges_cancelled,
                "refunded": stats.hedge_cost_refunded,
            },
            "breakers": breakers,
            "profiled_statements": (
                len(self.profiler.statements) if self.profiler is not None else 0
            ),
        }

    def close(self) -> None:
        """End the root span, flush the trace file, release the obs runtime.

        With a configured ``cache_path``, the answer cache is also spilled
        to disk here so the next run replays this one's answers. Idempotent,
        and a no-op for an engine without observability or a cache path. The
        engine stays usable afterwards — only tracing stops.
        """
        if self._closed:
            return
        self._closed = True
        if self.metrics_server is not None:
            self.metrics_server.stop()
        if self.profiler is not None and self.config.profile_path:
            self.profiler.save(self.config.profile_path)
        if self.platform.cache is not None and self.config.cache_path:
            self.platform.cache.save(self.config.cache_path)
        self.tracer.close()
        deactivate(self.tracer, self.metrics)

    def __enter__(self) -> "CrowdEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    @property
    def scheduler(self):
        """The platform's batch execution runtime."""
        return self.platform.scheduler

    @property
    def cache(self):
        """The platform's answer cache (None when caching is off)."""
        return self.platform.cache

    @property
    def stats(self) -> PlatformStats:
        return self.platform.stats

    @property
    def spent(self) -> float:
        return self.platform.stats.cost_spent

    @property
    def remaining_budget(self) -> float:
        return self.platform.remaining_budget
