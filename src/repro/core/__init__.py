"""Engine facade, configuration, and requester job management."""

from repro.core.config import EngineConfig
from repro.core.engine import CrowdEngine
from repro.core.requester import JobReport, Requester

__all__ = ["CrowdEngine", "EngineConfig", "JobReport", "Requester"]
