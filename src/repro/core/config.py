"""Engine configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.quality.truth import CATEGORICAL_METHODS


@dataclass
class EngineConfig:
    """Knobs for a :class:`~repro.core.engine.CrowdEngine`.

    Attributes:
        redundancy: Default votes per crowd question.
        inference: Truth-inference method name (see
            :data:`repro.quality.truth.CATEGORICAL_METHODS`).
        budget: Total spend ceiling for the engine's platform.
        task_price: Default per-assignment reward.
        seed: Master seed — the pool gets ``seed``, the platform ``seed+1``.
        pool_size: Workers in the default pool.
        pool_accuracy_range: (low, high) accuracies for the default
            heterogeneous pool.
    """

    redundancy: int = 3
    inference: str = "mv"
    budget: float = math.inf
    task_price: float = 0.01
    seed: int = 0
    pool_size: int = 25
    pool_accuracy_range: tuple[float, float] = (0.6, 0.95)

    def __post_init__(self) -> None:
        if self.redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        if self.inference not in CATEGORICAL_METHODS:
            raise ConfigurationError(
                f"unknown inference {self.inference!r}; "
                f"available: {sorted(CATEGORICAL_METHODS)}"
            )
        if self.task_price < 0:
            raise ConfigurationError("task_price must be non-negative")
        if self.pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        low, high = self.pool_accuracy_range
        if not 0.0 <= low <= high <= 1.0:
            raise ConfigurationError("pool_accuracy_range must satisfy 0 <= low <= high <= 1")

    def make_inference(self):
        """Instantiate the configured truth-inference method."""
        return CATEGORICAL_METHODS[self.inference]()
