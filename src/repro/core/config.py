"""Engine configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platform.batch import BatchConfig
from repro.quality.truth import CATEGORICAL_METHODS


@dataclass
class EngineConfig:
    """Knobs for a :class:`~repro.core.engine.CrowdEngine`.

    Attributes:
        redundancy: Default votes per crowd question.
        inference: Truth-inference method name (see
            :data:`repro.quality.truth.CATEGORICAL_METHODS`).
        budget: Total spend ceiling for the engine's platform.
        task_price: Default per-assignment reward.
        seed: Master seed — the pool gets ``seed``, the platform ``seed+1``,
            and the batch runtime's per-assignment streams ``seed+2``.
        pool_size: Workers in the default pool.
        pool_accuracy_range: (low, high) accuracies for the default
            heterogeneous pool.
        batch_size: Tasks grouped per dispatch wave of the batch runtime.
        max_parallel: Concurrent assignment lanes; 1 (the default) is the
            sequential path, bit-identical to pre-batch-runtime behaviour.
        retry_limit: Retries per assignment after the first attempt.
        assignment_timeout: Simulated seconds before an in-flight
            assignment is reclaimed and retried; None disables timeouts.
        abandon_rate: Probability a simulated worker abandons an
            assignment (fault injection; 0 = off, the default).
        retry_backoff: Base simulated backoff before retry r
            (``retry_backoff * 2**(r-1)``).
        trace_path: When set, the engine writes a span trace of every run
            to this file as JSONL (read it back with
            ``python -m repro trace-report FILE``).
        metrics_enabled: Record counters/histograms (assignment latency,
            retries per task, EM deltas, per-operator cost) in the
            engine's :class:`~repro.obs.metrics.MetricsRegistry`.
        event_log_limit: Cap on the in-memory event log each simulated
            timeline retains; None (default) keeps every event.
        failure_policy: What the batch runtime does when a task cannot be
            completed — ``"fail"`` (raise, the historical default),
            ``"skip"`` (drop the task from results), or ``"degrade"``
            (keep partial answers plus a failure record).
        fault_plan: Path to a JSON :class:`~repro.faults.plan.FaultPlan`
            the engine's platform injects, or None (no faults).
        deadline: Simulated-clock deadline; a breaker stops dispatching
            new batches once the scheduler clock reaches it. None = off.
        adaptive_deadline: Escalate through the recovery ladder as the
            clock eats into ``deadline`` (hedge harder, then shrink
            redundancy) instead of only tripping at the wall — installs an
            :class:`~repro.recovery.breakers.AdaptiveDeadlineBreaker`.
            Requires ``deadline``.
        hedge_enabled: Speculatively re-issue in-flight straggler
            assignments once the batch runtime's per-task-type completion
            model is warm (first answer wins; losing copy cancelled and
            refunded). Off by default — hedging off is bit-identical to
            the pre-hedging runtime.
        hedge_percentile: Completion-time quantile that flags a running
            assignment as a straggler.
        hedge_min_samples: Observations per task type before the fitted
            model is trusted for hedging.
        budget_reserve: Stop dispatching new batches once remaining
            budget drops to this floor (a budget circuit breaker). 0 = off.
        cache_enabled: Attach a content-addressed
            :class:`~repro.platform.cache.AnswerCache` to the platform, so
            identical questions are published once and answers are reused
            across operators and statements. Off by default (the
            historical behaviour); a cold cache changes nothing on
            workloads without duplicate questions.
        cache_path: JSONL file the cache is loaded from at startup (when
            it exists) and spilled to on :meth:`~repro.core.engine.
            CrowdEngine.close` — Reprowd-style reuse across runs. Setting
            a path implies ``cache_enabled``.
        cache_max_entries: LRU capacity of the cache (least-recently-used
            signature evicted past it); None = unbounded.
        metrics_port: When set, the engine starts a live-ops HTTP server
            on ``127.0.0.1:<port>`` exposing ``/metrics`` (Prometheus
            text exposition), ``/healthz``, and ``/run`` (JSON run
            status). Port 0 binds an ephemeral port (read it back from
            ``engine.metrics_server.port``). Implies ``metrics_enabled``.
        profile_path: When set, the engine attaches a
            :class:`~repro.obs.profiler.QueryProfiler` and writes a
            per-statement ``profile.json`` here on
            :meth:`~repro.core.engine.CrowdEngine.close` (render it with
            ``python -m repro profile-report FILE``). Implies
            ``metrics_enabled``.
        pipeline: Execute SELECTs through the streaming pipelined
            executor (:class:`~repro.lang.streaming.StreamingExecutor`):
            crowd waves saturate the batch lanes, answers flow downstream
            as they land, and TOP-K/LIMIT cancels still-pending upstream
            HITs. Off by default — the barrier path is bit-identical to
            previous releases.
    """

    redundancy: int = 3
    inference: str = "mv"
    budget: float = math.inf
    task_price: float = 0.01
    seed: int = 0
    pool_size: int = 25
    pool_accuracy_range: tuple[float, float] = (0.6, 0.95)
    batch_size: int = 32
    max_parallel: int = 1
    retry_limit: int = 2
    assignment_timeout: float | None = None
    abandon_rate: float = 0.0
    retry_backoff: float = 1.0
    trace_path: str | None = None
    metrics_enabled: bool = False
    event_log_limit: int | None = None
    failure_policy: str = "fail"
    fault_plan: str | None = None
    deadline: float | None = None
    adaptive_deadline: bool = False
    hedge_enabled: bool = False
    hedge_percentile: float = 0.9
    hedge_min_samples: int = 20
    budget_reserve: float = 0.0
    cache_enabled: bool = False
    cache_path: str | None = None
    cache_max_entries: int | None = None
    metrics_port: int | None = None
    profile_path: str | None = None
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.redundancy < 1:
            raise ConfigurationError("redundancy must be >= 1")
        if self.inference not in CATEGORICAL_METHODS:
            raise ConfigurationError(
                f"unknown inference {self.inference!r}; "
                f"available: {sorted(CATEGORICAL_METHODS)}"
            )
        if self.task_price < 0:
            raise ConfigurationError("task_price must be non-negative")
        if self.pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        low, high = self.pool_accuracy_range
        if not 0.0 <= low <= high <= 1.0:
            raise ConfigurationError("pool_accuracy_range must satisfy 0 <= low <= high <= 1")
        if self.trace_path is not None and not self.trace_path:
            raise ConfigurationError("trace_path must be a non-empty path or None")
        if self.event_log_limit is not None and self.event_log_limit < 0:
            raise ConfigurationError("event_log_limit must be >= 0 or None")
        if self.fault_plan is not None and not self.fault_plan:
            raise ConfigurationError("fault_plan must be a non-empty path or None")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0 or None, got {self.deadline}"
            )
        if self.adaptive_deadline and self.deadline is None:
            raise ConfigurationError(
                "adaptive_deadline requires a deadline to escalate against"
            )
        if self.budget_reserve < 0:
            raise ConfigurationError(
                f"budget_reserve must be >= 0, got {self.budget_reserve}"
            )
        if self.cache_path is not None and not self.cache_path:
            raise ConfigurationError("cache_path must be a non-empty path or None")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ConfigurationError(
                f"cache_max_entries must be >= 1 or None, got {self.cache_max_entries}"
            )
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ConfigurationError(
                f"metrics_port must be in [0, 65535] or None, got {self.metrics_port}"
            )
        if self.profile_path is not None and not self.profile_path:
            raise ConfigurationError("profile_path must be a non-empty path or None")
        # Both live-ops surfaces read the registry, so they force it on.
        if self.metrics_port is not None or self.profile_path is not None:
            self.metrics_enabled = True
        # Batch-runtime knobs share BatchConfig's validation (including
        # failure_policy parsing).
        self.make_batch_config()

    def make_inference(self):
        """Instantiate the configured truth-inference method."""
        return CATEGORICAL_METHODS[self.inference]()

    def make_batch_config(self) -> BatchConfig:
        """The batch-runtime configuration these knobs describe."""
        return BatchConfig(
            batch_size=self.batch_size,
            max_parallel=self.max_parallel,
            retry_limit=self.retry_limit,
            assignment_timeout=self.assignment_timeout,
            abandon_rate=self.abandon_rate,
            retry_backoff=self.retry_backoff,
            seed=self.seed + 2,
            failure_policy=self.failure_policy,
            hedge_enabled=self.hedge_enabled,
            hedge_percentile=self.hedge_percentile,
            hedge_min_samples=self.hedge_min_samples,
        )

    @property
    def cache_active(self) -> bool:
        """True when the engine should attach an answer cache."""
        return self.cache_enabled or self.cache_path is not None

    def make_cache(self):
        """Instantiate the configured answer cache, or None when off."""
        if not self.cache_active:
            return None
        from repro.platform.cache import AnswerCache

        return AnswerCache(max_entries=self.cache_max_entries)

    def make_fault_plan(self):
        """Load the configured fault plan, or None when faults are off."""
        if self.fault_plan is None:
            return None
        from repro.faults.plan import FaultPlan

        return FaultPlan.from_file(self.fault_plan)
