"""Requester-side job management.

A :class:`Requester` tracks named jobs — batches of tasks submitted
together — with per-job quality, cost, and latency accounting. It is the
bookkeeping layer a real requester dashboard would sit on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, Task
from repro.quality.truth import InferenceResult, MajorityVote, TruthInference


@dataclass
class JobReport:
    """Everything a requester learns from one completed job."""

    name: str
    tasks: int
    answers: dict[str, list[Answer]]
    inference: InferenceResult
    cost: float
    makespan: float | None = None

    @property
    def truths(self) -> dict[str, Any]:
        return self.inference.truths

    @property
    def mean_confidence(self) -> float:
        confidences = list(self.inference.confidences.values())
        return sum(confidences) / len(confidences) if confidences else 0.0


@dataclass
class Requester:
    """Submit jobs, aggregate answers, track spend across jobs.

    Args:
        platform: The marketplace jobs run on.
        inference: Default aggregation (overridable per job).
    """

    platform: SimulatedPlatform
    inference: TruthInference = field(default_factory=MajorityVote)
    jobs: dict[str, JobReport] = field(default_factory=dict)

    def submit(
        self,
        name: str,
        tasks: Sequence[Task],
        redundancy: int = 3,
        inference: TruthInference | None = None,
        with_timeline: bool = False,
    ) -> JobReport:
        """Run a batch job to completion and record its report.

        With *with_timeline*, answers are gathered on the event-simulated
        timeline (slower but yields a makespan); otherwise instantaneously.
        """
        if name in self.jobs:
            raise ConfigurationError(f"job {name!r} already exists")
        if not tasks:
            raise ConfigurationError("a job needs at least one task")
        method = inference or self.inference
        before = self.platform.stats.cost_spent
        makespan = None
        if with_timeline:
            timeline = self.platform.simulate_timeline(tasks, redundancy=redundancy)
            makespan = timeline.makespan
            answers: dict[str, list[Answer]] = {t.task_id: [] for t in tasks}
            for answer in timeline.answers:
                answers[answer.task_id].append(answer)
        else:
            answers = self.platform.collect(tasks, redundancy=redundancy)
        result = method.infer(answers)
        report = JobReport(
            name=name,
            tasks=len(tasks),
            answers=answers,
            inference=result,
            cost=self.platform.stats.cost_spent - before,
            makespan=makespan,
        )
        self.jobs[name] = report
        return report

    @property
    def total_spent(self) -> float:
        return sum(job.cost for job in self.jobs.values())

    def job(self, name: str) -> JobReport:
        """Look up a completed job's report by name."""
        try:
            return self.jobs[name]
        except KeyError:
            raise ConfigurationError(f"no job named {name!r}") from None
