"""Command-line interface: run CrowdSQL against a simulated crowd.

Usage::

    python -m repro run script.sql [--seed 7] [--redundancy 3] [--pool 25]
                                   [--batch-size 32] [--max-parallel 8]
                                   [--inference ds] [--trace run.jsonl]
                                   [--metrics] [--failure-policy degrade]
                                   [--fault-plan plan.json]
                                   [--cache answers.jsonl | --no-cache]
                                   [--checkpoint DIR | --resume DIR]
    python -m repro repl
    python -m repro demo
    python -m repro chaos [--seeds 3] [--intensity 1.0] [--check-resume]
                          [--mitigation hedge]
    python -m repro trace-report run.jsonl
    python -m repro serve-metrics [script.sql] [--port 9109] [--iterations 5]
                                  [--hold 0]
    python -m repro serve [tenants.json] [--port 9110] [--rounds 2]
                          [--quantum 8] [--hold 0]
    python -m repro profile-report profile.json

Statements are ';'-separated. Queries print aligned tables plus crowd
accounting. Crowd predicates work out of the box where defaults exist
(CROWDEQUAL uses normalized token equality; CROWDORDER BY works on numeric
columns); CROWDFILTER and CNULL resolution need programmatic oracles, so
the CLI reports a clear error for them instead of guessing.

``--trace FILE`` writes a JSONL span trace of the whole run (operators,
batches, event timeline, EM iterations); ``trace-report`` renders it as
per-operator time/cost breakdowns, retry hotspots, and slowest spans.
``--metrics`` prints the metrics registry after the run. ``--profile
FILE`` writes a per-statement query profile (render it with
``profile-report``). ``serve-metrics`` runs a script in a loop while a
live-ops HTTP server exposes ``/metrics`` (Prometheus text exposition),
``/healthz``, and ``/run`` (JSON run status) — counters advance
monotonically across iterations because every iteration shares one
registry. ``serve`` runs the multi-tenant service: concurrent tenant
sessions (budgets, fair-share weights, per-tenant scripts from a JSON
spec) share one platform and worker pool, with per-tenant labeled
metrics and a tenant view on ``/run``.

Identical crowd questions are answered once per run (an in-memory answer
cache is on by default; ``--no-cache`` disables it). ``--cache FILE``
persists the cache as JSONL across runs, Reprowd-style: a re-run of the
same script replays every answer and publishes 0 new HITs.

``--pipeline`` streams SELECTs through the pipelined executor: every
crowd question of a statement is planned up front, waves of answers flow
downstream as batches land, and TOP-K/LIMIT cancels still-pending
upstream HITs (the saving shows up in the crowd accounting line).

Robustness flags: ``--fault-plan FILE`` injects a declarative fault plan
(see :mod:`repro.faults`); ``--hedge`` speculatively re-issues in-flight
straggler assignments (first answer wins, the loser is cancelled and
refunded); ``--failure-policy`` picks what happens when a
task cannot complete (``fail``/``skip``/``degrade``); ``--checkpoint DIR``
snapshots platform + database state after every statement so a killed run
can continue with ``--resume DIR``. Exit codes: 0 ok, 1 run error, 2
configuration error, 3 retries exhausted on a crowd task.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ConfigurationError, CrowdDMError, RetryExhaustedError
from repro.experiments.report import format_table
from repro.lang.executor import QueryResult
from repro.lang.interpreter import CrowdSQLSession, StatementResult
from repro.obs import NULL_TRACER, JsonlSink, MetricsRegistry, Tracer, report_from_file
from repro.obs.runtime import activate, deactivate
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.quality.truth import CATEGORICAL_METHODS
from repro.workers.pool import WorkerPool

DEMO_SCRIPT = """
CREATE TABLE films (title STRING NOT NULL, minutes INTEGER, score FLOAT,
                    PRIMARY KEY (title));
INSERT INTO films VALUES
    ('The Iron Giant', 86, 8.1), ('Alien Dawn', 122, 6.4),
    ('Paper Planes', 96, 7.2), ('Night Harvest', 141, 5.9),
    ('Sunny Side Up', 89, 7.8);
CREATE TABLE imports (listing STRING NOT NULL, PRIMARY KEY (listing));
INSERT INTO imports VALUES ('iron giant the'), ('dawn alien'), ('totally new film');
SELECT title, minutes FROM films WHERE minutes < 100 ORDER BY minutes;
SELECT COUNT(*), AVG(score) FROM films;
SELECT listing, title FROM imports CROWDJOIN films ON CROWDEQUAL(listing, title);
SELECT title FROM films CROWDORDER BY score LIMIT 3;
"""


def build_session(
    seed: int,
    redundancy: int,
    pool_size: int,
    batch_size: int = 32,
    max_parallel: int = 1,
    inference: str = "mv",
    trace_path: str | None = None,
    metrics_enabled: bool = False,
    failure_policy: str = "fail",
    fault_plan: str | None = None,
    cache_enabled: bool = True,
    cache_path: str | None = None,
    metrics_registry: MetricsRegistry | None = None,
    hedge_enabled: bool = False,
    pipeline: bool = False,
) -> CrowdSQLSession:
    """A session over a fresh simulated pool of reasonably diligent workers.

    An unwritable or empty *trace_path* raises
    :class:`~repro.errors.ConfigurationError` here, before any crowd work
    starts, so the CLI reports it as a clean configuration error. The same
    goes for an unreadable or malformed *fault_plan* file, and for an
    unreadable or unwritable *cache_path*.

    The CLI keeps an in-memory answer cache by default (identical crowd
    questions within a run are published once); *cache_path* additionally
    loads/spills it from/to a JSONL file, and ``cache_enabled=False``
    switches caching off entirely.

    *metrics_registry* lets the caller supply an existing (typically
    enabled) registry instead of a fresh one — ``serve-metrics`` shares
    one registry across its per-iteration sessions so scraped counters
    advance monotonically.

    *hedge_enabled* turns on speculative re-issue of in-flight straggler
    assignments (first answer wins, the losing copy is cancelled and
    refunded) — see :class:`repro.platform.batch.HedgeState`.

    *pipeline* streams SELECTs through the pipelined executor (crowd
    waves overlap across operators; TOP-K/LIMIT cancels pending HITs) —
    see :class:`repro.lang.streaming.StreamingExecutor`.
    """
    if trace_path is not None and not trace_path:
        raise ConfigurationError("trace path must be a non-empty file name")
    plan = None
    if fault_plan is not None:
        from repro.faults.plan import FaultPlan

        try:
            plan = FaultPlan.from_file(fault_plan)
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {fault_plan}: {exc}") from exc
    cache = None
    if cache_enabled or cache_path is not None:
        from pathlib import Path

        from repro.errors import CacheError
        from repro.platform.cache import AnswerCache

        if cache_path is not None and not cache_path:
            raise ConfigurationError("cache path must be a non-empty file name")
        cache = AnswerCache()
        if cache_path is not None:
            try:
                if Path(cache_path).exists():
                    cache.load(cache_path)
                else:
                    # Touch the spill file now so an unwritable path is a
                    # clean configuration error, not a crash after paid work.
                    cache.save(cache_path)
            except CacheError as exc:
                raise ConfigurationError(str(exc)) from exc
    pool = WorkerPool.heterogeneous(
        pool_size, accuracy_low=0.75, accuracy_high=0.97, seed=seed
    )
    tracer = Tracer(JsonlSink(trace_path)) if trace_path else NULL_TRACER
    if metrics_registry is not None:
        metrics = metrics_registry
    else:
        metrics = MetricsRegistry(enabled=metrics_enabled)
    platform = SimulatedPlatform(
        pool,
        seed=seed + 1,
        batch=BatchConfig(
            batch_size=batch_size,
            max_parallel=max_parallel,
            seed=seed + 2,
            failure_policy=failure_policy,
            hedge_enabled=hedge_enabled,
        ),
        tracer=tracer,
        metrics=metrics,
    )
    if cache is not None:
        platform.attach_cache(cache)
    if plan is not None:
        platform.attach_faults(plan)
    if tracer.enabled or metrics.enabled:
        activate(tracer, metrics)
    return CrowdSQLSession(
        platform=platform,
        redundancy=redundancy,
        inference=CATEGORICAL_METHODS[inference](),
        pipeline=pipeline,
    )


def render(result: QueryResult | StatementResult) -> str:
    """Render one statement result for terminal output."""
    if isinstance(result, StatementResult):
        if result.kind == "inserted":
            return f"-- {result.kind} {result.row_count} row(s) into {result.table}"
        return f"-- {result.kind} table {result.table}"
    lines = [format_table(result.rows, columns=list(result.columns))]
    stats = result.stats
    if stats.crowd_questions or stats.cells_filled:
        line = (
            f"-- crowd: {stats.crowd_questions} questions, "
            f"{stats.crowd_answers} answers, {stats.cells_filled} cells filled, "
            f"spend {stats.crowd_cost:.4f}"
        )
        if stats.tasks_cancelled:
            line += (
                f", {stats.tasks_cancelled} HITs cancelled "
                f"(saved {stats.cost_avoided:.4f})"
            )
        lines.append(line)
    lines.append(f"-- {len(result.rows)} row(s)")
    return "\n".join(lines)


def run_script(
    session: CrowdSQLSession,
    sql: str,
    out=None,
    checkpoint_dir: str | None = None,
    resume_dir: str | None = None,
) -> int:
    """Execute *sql*; print results; return a process exit code.

    With *checkpoint_dir*, the platform + database state is snapshotted
    after every statement; with *resume_dir*, a snapshot written that way
    is restored first and already-executed statements are skipped. Exit
    codes: 0 ok, 1 run error, 3 retries exhausted on a crowd task.
    """
    out = out if out is not None else sys.stdout  # resolve at call time
    skip = 0
    results = []
    try:
        if resume_dir is not None:
            skip = _restore_session(session, resume_dir)
            print(f"-- resumed from {resume_dir}: skipping {skip} statement(s)", file=out)
        on_statement = None
        if checkpoint_dir is not None:
            def on_statement(index: int, result) -> None:
                _checkpoint_session(session, checkpoint_dir, statements_done=index + 1)
        results = session.execute(sql, skip=skip, on_statement=on_statement)
    except RetryExhaustedError as exc:
        print(f"error: {exc}", file=out)
        return 3
    except CrowdDMError as exc:
        print(f"error: {exc}", file=out)
        return 1
    for result in results:
        print(render(result), file=out)
    if session.platform is not None:
        batch_line = session.platform.stats.batch_summary()
        if batch_line:
            print(f"-- batch runtime: {batch_line}", file=out)
        cache_line = session.platform.stats.cache_summary()
        if cache_line:
            print(f"-- answer cache: {cache_line}", file=out)
    return 0


def _checkpoint_session(
    session: CrowdSQLSession, directory: str, statements_done: int
) -> None:
    """Snapshot the session (platform state + database rows) to *directory*."""
    from pathlib import Path

    from repro.data.persistence import save_database
    from repro.recovery.checkpoint import Checkpoint

    Checkpoint.capture(
        session.platform,
        scheduler=session.platform.scheduler,
        inference=session.inference,
        extra={"statements_done": statements_done},
    ).save(directory)
    save_database(session.database, Path(directory) / "db")


def _restore_session(session: CrowdSQLSession, directory: str) -> int:
    """Restore a CLI checkpoint; returns how many statements to skip."""
    from pathlib import Path

    from repro.data.persistence import load_database
    from repro.recovery.checkpoint import Checkpoint

    checkpoint = Checkpoint.load(directory)
    checkpoint.restore(
        session.platform,
        scheduler=session.platform.scheduler,
        inference=session.inference,
    )
    session.database = load_database(Path(directory) / "db")
    return int(checkpoint.extra.get("statements_done", 0))


def repl(session: CrowdSQLSession, stdin=None, out=None) -> int:
    """Line-oriented REPL: statements end with ';', EOF or \\q exits."""
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    print("crowddm CrowdSQL — ';' ends a statement, \\q quits", file=out)
    buffer: list[str] = []
    for line in stdin:
        stripped = line.strip()
        if stripped in ("\\q", "\\quit", "exit"):
            break
        buffer.append(line)
        if stripped.endswith(";"):
            run_script(session, "".join(buffer), out=out)
            buffer = []
    if buffer and "".join(buffer).strip():
        run_script(session, "".join(buffer), out=out)
    return 0


def _serve_run_status(state: dict, iterations: int) -> dict:
    """The ``/run`` payload for serve-metrics (read from the server thread)."""
    payload: dict = {
        "iteration": state["iteration"],
        "iterations": iterations,
        "current_statement": None,
    }
    session = state["session"]
    if session is None or session.platform is None:
        return payload
    stats = session.platform.stats
    hits, misses = stats.cache_hits, stats.cache_misses
    requests = hits + misses
    scheduler = session.platform.scheduler
    payload.update(
        current_statement=session.current_statement,
        budget={"limit": None, "spent": stats.cost_spent, "remaining": None},
        answers_collected=stats.answers_collected,
        hits_published=stats.tasks_published,
        batches_dispatched=stats.batches_dispatched,
        simulated_clock=(
            scheduler.simulated_clock if scheduler is not None else 0.0
        ),
        cache={
            "enabled": session.platform.cache is not None,
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / requests) if requests else 0.0,
            "answers_reused": stats.cache_answers_reused,
        },
        breakers=(
            [{"name": b.name, "tripped": b.tripped} for b in scheduler.breakers]
            if scheduler is not None
            else []
        ),
    )
    return payload


def _run_serve_metrics(args) -> int:
    """``python -m repro serve-metrics``: script loop + live /metrics server.

    One enabled registry is shared by every per-iteration session, so the
    counters a scraper sees only ever move forward.
    """
    import time

    from repro.obs.server import MetricsServer

    sql = DEMO_SCRIPT
    if args.script is not None:
        try:
            with open(args.script, encoding="utf-8") as handle:
                sql = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.script}: {exc}", file=sys.stderr)
            return 1
    registry = MetricsRegistry(enabled=True)
    state: dict = {"session": None, "iteration": 0}
    try:
        server = MetricsServer(
            registry,
            run_status=lambda: _serve_run_status(state, args.iterations),
            port=args.port,
        )
        server.start()
    except CrowdDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"-- serving {server.url}/metrics /healthz /run", flush=True)
    code = 0
    try:
        for iteration in range(args.iterations):
            state["iteration"] = iteration + 1
            try:
                session = build_session(
                    args.seed + iteration,
                    args.redundancy,
                    args.pool,
                    batch_size=args.batch_size,
                    max_parallel=args.max_parallel,
                    inference=args.inference,
                    metrics_registry=registry,
                )
            except CrowdDMError as exc:
                print(f"error: {exc}", file=sys.stderr)
                code = 2
                break
            state["session"] = session
            code = run_script(session, sql)
            if code != 0:
                break
        if args.hold > 0:
            time.sleep(args.hold)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        deactivate()
    return code


def _load_tenant_spec(path: str | None):
    """Parse a ``serve`` tenant-spec file into (specs, sessions, scripts, budget).

    The file is JSON: either a bare list of tenant objects or
    ``{"platform_budget": ..., "tenants": [...]}``. Each tenant object:
    ``{"name": ..., "budget": ..., "weight": ..., "sessions": ...,
    "script": ...}`` — everything but ``name`` optional. With no file at
    all, two demo tenants (weights 2 and 1) share the platform.
    """
    import json

    from repro.service import TenantSpec

    if path is None:
        data: dict = {"tenants": [
            {"name": "alice", "weight": 2.0},
            {"name": "bob", "weight": 1.0},
        ]}
    else:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(f"cannot read tenant spec {path}: {exc}") from exc
        if isinstance(data, list):
            data = {"tenants": data}
    entries = data.get("tenants")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError("tenant spec must define a non-empty 'tenants' list")
    specs, sessions, scripts = [], {}, {}
    for entry in entries:
        if not isinstance(entry, dict) or "name" not in entry:
            raise ConfigurationError("each tenant needs at least a 'name'")
        name = str(entry["name"])
        spec = TenantSpec(
            name=name,
            budget=float(entry.get("budget", float("inf"))),
            weight=float(entry.get("weight", 1.0)),
        )
        specs.append(spec)
        sessions[name] = int(entry.get("sessions", 1))
        if sessions[name] < 1:
            raise ConfigurationError(f"tenant {name!r}: sessions must be >= 1")
        script = entry.get("script")
        if script is not None:
            try:
                with open(script, encoding="utf-8") as handle:
                    scripts[name] = handle.read()
            except OSError as exc:
                raise ConfigurationError(
                    f"tenant {name!r}: cannot read script {script}: {exc}"
                ) from exc
    budget = data.get("platform_budget")
    return specs, sessions, scripts, (float(budget) if budget is not None else None)


def _run_serve(args) -> int:
    """``python -m repro serve``: N tenants share one platform, live-scraped.

    Builds one shared platform + worker pool, registers the tenants from
    the spec file, and drives every tenant session concurrently on the
    asyncio loop (session threads multiplex through the service's
    bounded pool; all crowd work serializes through the fair-share
    dispatcher). ``/metrics`` and ``/run`` serve live per-tenant state
    throughout.
    """
    import asyncio
    import math
    import time

    from repro.data.database import Database
    from repro.obs.server import MetricsServer
    from repro.service import CrowdService
    from repro.workers.pool import WorkerPool

    try:
        specs, sessions_per, scripts, platform_budget = _load_tenant_spec(args.tenants)
    except CrowdDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = MetricsRegistry(enabled=True)
    pool = WorkerPool.heterogeneous(
        args.pool, accuracy_low=0.75, accuracy_high=0.97, seed=args.seed
    )
    platform = SimulatedPlatform(
        pool,
        budget=platform_budget if platform_budget is not None else math.inf,
        seed=args.seed + 1,
        batch=BatchConfig(
            batch_size=args.batch_size,
            max_parallel=args.max_parallel,
            seed=args.seed + 2,
        ),
        metrics=registry,
    )
    if not args.no_cache:
        from repro.platform.cache import AnswerCache

        # One shared cache: a question any tenant already paid for replays
        # free for everyone (hits are never charged to anyone's ledger).
        platform.attach_cache(AnswerCache())
    service = CrowdService(platform, quantum_tasks=args.quantum)
    for spec in specs:
        service.register(spec)
    try:
        server = MetricsServer(
            registry, run_status=service.run_status, port=args.port
        ).start()
    except CrowdDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"-- serving {server.url}/metrics /healthz /run", flush=True)
    code = 0

    async def tenant_session(name: str) -> "tuple[bool, str] | None":
        from repro.errors import AdmissionRejectedError, BudgetExceededError

        sql = scripts.get(name, DEMO_SCRIPT)
        try:
            for _ in range(args.rounds):
                # Fresh catalog per round (the script CREATEs its tables);
                # the platform, cache, and tenant ledger persist across
                # rounds, so repeated questions replay from the cache.
                session = service.session(
                    name,
                    database=Database(),
                    redundancy=args.redundancy,
                    inference=CATEGORICAL_METHODS[args.inference](),
                    pipeline=args.pipeline,
                )
                await service.aexecute(session, sql)
        except (BudgetExceededError, AdmissionRejectedError) as exc:
            # Quota enforcement working as designed, not a server failure.
            return (False, f"{type(exc).__name__}: {exc}")
        except CrowdDMError as exc:
            return (True, f"{type(exc).__name__}: {exc}")
        return None

    async def drive() -> int:
        jobs = [
            tenant_session(spec.name)
            for spec in specs
            for _ in range(sessions_per[spec.name])
        ]
        failures = 0
        for spec_name, outcome in zip(
            [s.name for s in specs for _ in range(sessions_per[s.name])],
            await asyncio.gather(*jobs),
        ):
            if outcome is not None:
                fatal, message = outcome
                print(f"-- tenant {spec_name}: {message}")
                failures += 1 if fatal else 0
        return failures

    try:
        with service:
            failures = asyncio.run(drive())
            for name, view in service.run_status()["tenants"].items():
                budget = view["budget"]
                budget_text = f"{budget:.4f}" if budget is not None else "inf"
                print(
                    f"-- tenant {name}: spent {view['spent']:.4f} of {budget_text}, "
                    f"{view['tasks_dispatched']} tasks over "
                    f"{view['units_completed']} unit(s), "
                    f"{view['units_rejected']} rejected, "
                    f"weight {view['weight']:g}"
                )
            if failures:
                code = 1
            if args.hold > 0:
                time.sleep(args.hold)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        deactivate()
    return code


def _run_chaos_command(args) -> int:
    """``python -m repro chaos``: seeded chaos sweep + optional resume check."""
    import tempfile

    from repro.faults.chaos import run_chaos, verify_kill_resume

    seeds = range(args.seed, args.seed + args.seeds)
    failed = 0
    for seed in seeds:
        try:
            report = run_chaos(seed, intensity=args.intensity, mitigation=args.mitigation)
        except Exception as exc:  # survival contract: any escape is a failure
            print(f"seed {seed}: FAILED — {type(exc).__name__}: {exc}")
            failed += 1
            continue
        print(report.summary())
        if args.mitigation != "none":
            # Same seed, same plan, mitigation off: attribute the deltas.
            try:
                baseline = run_chaos(seed, intensity=args.intensity)
            except Exception as exc:
                print(f"seed {seed}: baseline FAILED — {type(exc).__name__}: {exc}")
                failed += 1
                continue
            speedup = baseline.makespan / report.makespan if report.makespan else 1.0
            cost_ratio = report.cost / baseline.cost if baseline.cost else 1.0
            print(
                f"seed {seed}: {args.mitigation} vs none — makespan "
                f"{report.makespan:.0f}s vs {baseline.makespan:.0f}s "
                f"({speedup:.2f}x), cost {report.cost:.4f} vs "
                f"{baseline.cost:.4f} ({cost_ratio:.2f}x), "
                f"{report.hedges} hedge(s)"
            )
        if args.check_resume:
            with tempfile.TemporaryDirectory() as tmp:
                identical = verify_kill_resume(
                    seed, tmp, intensity=args.intensity, mitigation=args.mitigation
                )
            status = "bit-identical" if identical else "DIVERGED"
            print(f"seed {seed}: kill-and-resume {status}")
            if not identical:
                failed += 1
    if failed:
        print(f"chaos: {failed} of {len(seeds)} seed(s) failed")
        return 1
    print(f"chaos: all {len(seeds)} seed(s) survived")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CrowdSQL on a simulated crowd"
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--redundancy", type=int, default=5, help="votes per crowd question")
    parser.add_argument("--pool", type=int, default=25, help="simulated pool size")
    parser.add_argument(
        "--batch-size", type=int, default=32, help="tasks per dispatch batch"
    )
    parser.add_argument(
        "--max-parallel",
        type=int,
        default=1,
        help="concurrent assignment lanes (1 = sequential)",
    )
    parser.add_argument(
        "--inference",
        choices=sorted(CATEGORICAL_METHODS),
        default="mv",
        help="truth-inference method for crowd votes",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the run to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after the run",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="write a per-statement query profile to FILE (JSON; render "
        "with the profile-report command)",
    )
    parser.add_argument(
        "--hedge",
        action="store_true",
        help="speculatively re-issue in-flight straggler assignments "
        "(first answer wins; the losing copy is cancelled and refunded)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="stream SELECTs through the pipelined executor: crowd waves "
        "overlap across operators and TOP-K/LIMIT cancels pending HITs",
    )
    parser.add_argument(
        "--failure-policy",
        choices=("fail", "skip", "degrade"),
        default="fail",
        help="what to do when a crowd task cannot complete",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        help="inject faults from a JSON fault plan (see repro.faults)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache",
        metavar="FILE",
        default=None,
        help="load/spill the answer cache from/to FILE (JSONL) so repeated "
        "runs replay answers instead of re-publishing HITs",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable answer reuse (every crowd question is published)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="snapshot platform + database state after every statement",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="restore a --checkpoint snapshot and continue the script",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run_parser = commands.add_parser("run", help="execute a .sql script")
    run_parser.add_argument("script", help="path to the CrowdSQL file")
    commands.add_parser("repl", help="interactive session")
    commands.add_parser("demo", help="run the built-in demo script")
    chaos_parser = commands.add_parser(
        "chaos", help="run the chaos harness over seeded random fault plans"
    )
    chaos_parser.add_argument(
        "--seeds", type=int, default=3, help="how many consecutive seeds to run"
    )
    chaos_parser.add_argument(
        "--intensity", type=float, default=1.0, help="fault-plan intensity multiplier"
    )
    chaos_parser.add_argument(
        "--check-resume",
        action="store_true",
        help="also verify kill-and-resume bit-identity for each seed",
    )
    chaos_parser.add_argument(
        "--mitigation",
        choices=("none", "hedge"),
        default="none",
        help="straggler mitigation to run each seed under; 'hedge' also "
        "runs the unmitigated baseline and prints makespan/cost deltas",
    )
    report_parser = commands.add_parser(
        "trace-report", help="summarize a JSONL trace written with --trace"
    )
    report_parser.add_argument("trace_file", help="path to the trace file")
    serve_parser = commands.add_parser(
        "serve-metrics",
        help="run a script in a loop while serving /metrics, /healthz, /run",
    )
    serve_parser.add_argument(
        "script",
        nargs="?",
        default=None,
        help="CrowdSQL file to loop (the built-in demo when omitted)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=9109,
        help="port to bind on 127.0.0.1 (0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--iterations", type=int, default=5, help="how many times to run the script"
    )
    serve_parser.add_argument(
        "--hold",
        type=float,
        default=0.0,
        help="keep serving this many seconds after the last iteration",
    )
    serve_svc_parser = commands.add_parser(
        "serve",
        help="run N tenants concurrently against one shared platform "
        "while serving /metrics, /healthz, /run (tenant view)",
    )
    serve_svc_parser.add_argument(
        "tenants",
        nargs="?",
        default=None,
        help="tenant spec JSON ({'tenants': [{'name', 'budget', 'weight', "
        "'sessions', 'script'}, ...]}); two demo tenants when omitted",
    )
    serve_svc_parser.add_argument(
        "--port",
        type=int,
        default=9110,
        help="port to bind on 127.0.0.1 (0 picks an ephemeral port)",
    )
    serve_svc_parser.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="how many times each tenant session runs its script",
    )
    serve_svc_parser.add_argument(
        "--quantum",
        type=int,
        default=8,
        help="deficit-round-robin quantum (assignment credit per turn)",
    )
    serve_svc_parser.add_argument(
        "--hold",
        type=float,
        default=0.0,
        help="keep serving this many seconds after the last session",
    )
    profile_parser = commands.add_parser(
        "profile-report", help="summarize a profile written with --profile"
    )
    profile_parser.add_argument("profile_file", help="path to the profile file")

    args = parser.parse_args(argv)

    if args.command == "trace-report":
        try:
            print(report_from_file(args.trace_file))
        except CrowdDMError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "profile-report":
        from repro.obs.profiler import profile_report

        try:
            print(profile_report(args.profile_file))
        except CrowdDMError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "serve-metrics":
        return _run_serve_metrics(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "chaos":
        return _run_chaos_command(args)

    try:
        session = build_session(
            args.seed,
            args.redundancy,
            args.pool,
            batch_size=args.batch_size,
            max_parallel=args.max_parallel,
            inference=args.inference,
            trace_path=args.trace,
            metrics_enabled=args.metrics or args.profile is not None,
            failure_policy=args.failure_policy,
            fault_plan=args.fault_plan,
            cache_enabled=not args.no_cache,
            cache_path=args.cache,
            hedge_enabled=args.hedge,
            pipeline=args.pipeline,
        )
    except CrowdDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    profiler = None
    if args.profile is not None:
        from repro.obs.profiler import QueryProfiler

        profiler = QueryProfiler(
            session.platform.metrics, platform=session.platform
        )
        session.profiler = profiler

    tracer = session.platform.tracer
    metrics = session.platform.metrics
    code = 2
    try:
        with tracer.span("run", command=args.command, seed=args.seed):
            if args.command == "run":
                try:
                    with open(args.script, encoding="utf-8") as handle:
                        sql = handle.read()
                except OSError as exc:
                    print(f"error: cannot read {args.script}: {exc}", file=sys.stderr)
                    code = 1
                else:
                    code = run_script(
                        session,
                        sql,
                        checkpoint_dir=args.checkpoint,
                        resume_dir=args.resume,
                    )
            elif args.command == "repl":
                code = repl(session)
            elif args.command == "demo":
                code = run_script(
                    session,
                    DEMO_SCRIPT,
                    checkpoint_dir=args.checkpoint,
                    resume_dir=args.resume,
                )
    finally:
        if args.cache and session.platform.cache is not None:
            from repro.errors import CacheError

            try:
                session.platform.cache.save(args.cache)
            except CacheError as exc:
                print(f"error: {exc}", file=sys.stderr)
                code = 1
        if profiler is not None:
            try:
                profiler.save(args.profile)
            except CrowdDMError as exc:
                print(f"error: {exc}", file=sys.stderr)
                code = 1
        tracer.close()
        deactivate(tracer, metrics)
    if args.metrics:
        print(metrics.report())
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
